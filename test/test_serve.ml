(* The process-pool layer: the generic Jobqueue, the validated KITCKPT1
   container, and the forked worker pool — including the acceptance
   invariant that a SIGKILLed worker never changes the merged campaign
   outcome (qcheck over procs × kill schedules), the twice-lethal
   quarantine, the heartbeat hang-catcher, and abort/resume through the
   pool checkpoint. *)

module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Jobqueue = Kit_core.Jobqueue
module Checkpoint = Kit_core.Checkpoint
module Testcase = Kit_gen.Testcase
module Filter = Kit_detect.Filter
module Supervisor = Kit_exec.Supervisor
module Pool = Kit_serve.Pool
module Wire = Kit_serve.Wire
module Proto = Kit_serve.Proto
module Tenant = Kit_serve.Tenant
module Sched = Kit_serve.Sched

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Jobqueue ----------------------------------------------------------- *)

let test_jobqueue_submit_order () =
  let q : (string, int) Jobqueue.t = Jobqueue.create () in
  let a = Jobqueue.submit q "a" in
  let b = Jobqueue.submit q "b" in
  let c = Jobqueue.submit q "c" in
  check_int "consecutive ids" 1 b;
  (* complete out of order; reads come back in submit order *)
  Jobqueue.complete q c 30;
  Jobqueue.complete q a 10;
  Jobqueue.complete q b 20;
  Alcotest.(check (list (pair int int)))
    "results in submit order"
    [ (a, 10); (b, 20); (c, 30) ]
    (Jobqueue.results q);
  check_bool "drained" true (Jobqueue.is_drained q)

let test_jobqueue_reopen () =
  let q : (string, int) Jobqueue.t = Jobqueue.create () in
  Jobqueue.submit_as q ~id:7 "old";
  Jobqueue.complete q 7 1;
  Jobqueue.submit_as q ~id:3 "later";
  (* reopening id 7 discards its result but keeps its queue position *)
  Jobqueue.submit_as q ~id:7 "new";
  check_bool "result discarded" true (Jobqueue.result q 7 = None);
  Alcotest.(check string) "payload replaced" "new" (Jobqueue.payload q 7);
  Jobqueue.complete q 7 2;
  Jobqueue.complete q 3 9;
  Alcotest.(check (list (pair int int)))
    "submit-order position survives reopen"
    [ (7, 2); (3, 9) ]
    (Jobqueue.results q)

let test_jobqueue_reshard () =
  let q : (int, unit) Jobqueue.t = Jobqueue.create () in
  List.iter (fun i -> ignore (Jobqueue.submit q i)) [ 0; 1; 2; 3; 4; 5 ];
  let shards = Jobqueue.assign_round_robin q ~workers:3 in
  Alcotest.(check (list int))
    "worker 1 shard" [ 1; 4 ]
    (List.map fst shards.(1));
  (* worker 1 claims one job, then dies: both its jobs come back *)
  check_bool "claims own shard head" true
    (Jobqueue.claim_next q ~worker:1 = Some (1, 1));
  let orphans = Jobqueue.release q ~worker:1 in
  Alcotest.(check (list int))
    "release returns running+assigned in submit order" [ 1; 4 ]
    (List.map fst orphans);
  check_int "resharded counted" 2 (Jobqueue.resharded q);
  Jobqueue.deal q orphans ~to_:[ 0; 2 ];
  (* each survivor keeps its own 2-job shard and inherits one orphan *)
  check_int "dealt to 0" 3 (Jobqueue.assigned_count q ~worker:0);
  check_int "dealt to 2" 3 (Jobqueue.assigned_count q ~worker:2);
  (* a fresh worker with an empty shard steals from the longest queue *)
  (match Jobqueue.steal q ~thief:9 with
   | Some _ -> ()
   | None -> Alcotest.fail "steal must find a victim");
  check_int "steal counted" 1 (Jobqueue.stolen q)

let test_jobqueue_quarantine () =
  let q : (string, int) Jobqueue.t = Jobqueue.create () in
  let a = Jobqueue.submit q "a" in
  let b = Jobqueue.submit q "b" in
  Jobqueue.quarantine q a;
  (* a late result for a retired job must not resurrect it *)
  Jobqueue.complete q a 1;
  check_bool "still quarantined" true (Jobqueue.result q a = None);
  Alcotest.(check (list int)) "quarantined ids" [ a ] (Jobqueue.quarantined_ids q);
  Alcotest.(check (list int))
    "unfinished excludes quarantined" [ b ]
    (List.map fst (Jobqueue.unfinished q));
  Jobqueue.complete q b 2;
  check_bool "drained with quarantine" true (Jobqueue.is_drained q)

(* --- Checkpoint --------------------------------------------------------- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_checkpoint_roundtrip () =
  let path = tmp "kit_test_ckpt_rt" in
  Checkpoint.save path ~kind:"unit-test" (42, "payload", [ 1; 2; 3 ]);
  (match Checkpoint.load path ~kind:"unit-test" with
   | Ok v ->
     check_bool "value round-trips" true (v = (42, "payload", [ 1; 2; 3 ]))
   | Error e -> Alcotest.failf "load: %s" (Checkpoint.error_to_string e));
  Sys.remove path

let test_checkpoint_typed_errors () =
  let path = tmp "kit_test_ckpt_err" in
  (* missing file *)
  (match (Checkpoint.load (tmp "kit_no_such_ckpt") ~kind:"k" : (int, _) result) with
   | Error (Checkpoint.Io _) -> ()
   | Error e -> Alcotest.failf "want Io, got %s" (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "missing file cannot load");
  (* not a checkpoint at all *)
  let oc = open_out_bin path in
  output_string oc "definitely not a checkpoint";
  close_out oc;
  (match (Checkpoint.load path ~kind:"k" : (int, _) result) with
   | Error (Checkpoint.Not_checkpoint _) -> ()
   | Error e ->
     Alcotest.failf "want Not_checkpoint, got %s" (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "garbage cannot load");
  (* wrong kind *)
  Checkpoint.save path ~kind:"kind-a" 1;
  (match (Checkpoint.load path ~kind:"kind-b" : (int, _) result) with
   | Error (Checkpoint.Checkpoint_corrupt _) -> ()
   | Error e ->
     Alcotest.failf "want Checkpoint_corrupt, got %s"
       (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "kind mismatch cannot load");
  (* truncation: cut the file short *)
  Checkpoint.save path ~kind:"k" (Array.make 64 "x");
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 7));
  close_out oc;
  (match (Checkpoint.load path ~kind:"k" : (string array, _) result) with
   | Error (Checkpoint.Checkpoint_corrupt _) -> ()
   | Error e ->
     Alcotest.failf "want Checkpoint_corrupt, got %s"
       (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "truncated file cannot load");
  (* bit flip in the payload: digest must catch it *)
  let oc = open_out_bin path in
  let flipped = Bytes.of_string full in
  let last = Bytes.length flipped - 1 in
  Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 1));
  output_bytes oc flipped;
  close_out oc;
  (match (Checkpoint.load path ~kind:"k" : (string array, _) result) with
   | Error (Checkpoint.Checkpoint_corrupt _) -> ()
   | Error e ->
     Alcotest.failf "want Checkpoint_corrupt, got %s"
       (Checkpoint.error_to_string e)
   | Ok _ -> Alcotest.fail "corrupt payload cannot load");
  Sys.remove path

(* --- the pool ----------------------------------------------------------- *)

let small_options =
  { Campaign.default_options with
    Campaign.corpus_size = 24;
    seed = 11;
    diagnose = false }

let baseline = lazy (Campaign.run small_options)

(* Fast sabotage recovery for tests: tiny backoff, generous respawns. *)
let test_config =
  { Pool.default_config with
    Pool.procs = 2;
    heartbeat_s = 30.0;
    max_respawns = 8;
    backoff_base_ms = 1.0 }

let fp_one x = Digest.string (Marshal.to_string x [ Marshal.No_sharing ])
let multiset l = List.sort compare (List.map fp_one l)

let funnel_fp (f : Filter.funnel) =
  ( f.Filter.executed, f.Filter.initial, f.Filter.after_nondet,
    f.Filter.after_resource )

let pool_fps (o : Pool.outcome) =
  let reports = List.filter_map (fun r -> r.Campaign.cr_report) o.Pool.results in
  let quarantined =
    List.concat_map (fun r -> r.Campaign.cr_crashes) o.Pool.results
  in
  let funnel =
    List.fold_left
      (fun (e, i, n, r) (cr : Campaign.case_result) ->
        let f = cr.Campaign.cr_funnel in
        ( e + f.Filter.executed, i + f.Filter.initial,
          n + f.Filter.after_nondet, r + f.Filter.after_resource ))
      (0, 0, 0, 0) o.Pool.results
  in
  (multiset reports, funnel, multiset quarantined)

let distrib_fps (d : Distrib.t) =
  (multiset d.Distrib.reports, funnel_fp d.Distrib.funnel,
   multiset d.Distrib.quarantined)

let reference =
  lazy
    (let b = Lazy.force baseline in
     distrib_fps
       (Distrib.execute small_options b.Campaign.corpus b.Campaign.generation
          ~workers:1))

let run_pool ?(cfg = test_config) ?resume () =
  let b = Lazy.force baseline in
  Pool.execute ?resume cfg small_options b.Campaign.corpus
    b.Campaign.generation

let test_pool_matches_sequential () =
  let o = run_pool ~cfg:{ test_config with Pool.procs = 3 } () in
  check_bool "pool(3) = sequential distrib" true
    (pool_fps o = Lazy.force reference);
  check_int "no deaths in a clean run" 0 o.Pool.stats.Pool.deaths

let test_pool_survives_sigkill () =
  (* Worker 0 SIGKILLs itself on its second job — death mid-case from
     the parent's view. The run must finish with the shard resharded and
     the merged fingerprint unchanged. *)
  let cfg =
    { test_config with
      Pool.sabotage = { Pool.no_sabotage with Pool.kill_after = [ (0, 1) ] } }
  in
  let o = run_pool ~cfg () in
  check_bool "fingerprint equals crash-free run" true
    (pool_fps o = Lazy.force reference);
  check_bool "worker death observed" true (o.Pool.stats.Pool.deaths >= 1);
  check_bool "shard resharded" true (o.Pool.stats.Pool.resharded > 0);
  check_bool "worker respawned" true (o.Pool.stats.Pool.respawns >= 1)

let prop_pool_equals_distrib =
  (* The acceptance invariant: for any procs count and any single-kill
     schedule (slot × cases-completed-before-death, SIGKILL mid-case),
     the merged funnel/reports/quarantine fingerprint equals the
     sequential Distrib run. Multi-kill schedules are covered by the
     directed twice-lethal test — two kills in a row on one case
     *should* quarantine it, by design. *)
  QCheck.Test.make ~name:"pool procs=N × kill schedule = sequential distrib"
    ~count:5
    QCheck.(pair (int_range 1 4) (pair (int_range 0 3) (int_range 1 3)))
    (fun (procs, (slot, after)) ->
      let cfg =
        { test_config with
          Pool.procs;
          sabotage =
            { Pool.no_sabotage with
              Pool.kill_after = [ (slot mod procs, after) ] } }
      in
      pool_fps (run_pool ~cfg ()) = Lazy.force reference)

let test_pool_poison_two_strikes () =
  (* Case 0 kills every worker that touches it. Two strikes must land it
     in quarantine as a first-class Worker_lost crash report — not loop
     respawns forever — and every other case must match the clean run. *)
  let cfg =
    { test_config with
      Pool.sabotage = { Pool.no_sabotage with Pool.poison = [ 0 ] } }
  in
  let o = run_pool ~cfg () in
  let clean = run_pool () in
  check_int "one poisoned case" 1 o.Pool.stats.Pool.poisoned;
  (match (o.Pool.results, clean.Pool.results) with
   | poisoned :: rest, _ :: clean_rest ->
     (match poisoned.Campaign.cr_crashes with
      | [ { Supervisor.c_reason = Supervisor.Worker_lost _; c_attempts; _ } ] ->
        check_int "two strikes recorded" 2 c_attempts
      | _ -> Alcotest.fail "poisoned case must carry one Worker_lost crash");
     check_bool "every other case unchanged" true
       (List.map fp_one rest = List.map fp_one clean_rest)
   | _ -> Alcotest.fail "pool produced no results")

let test_pool_heartbeat_timeout () =
  (* Worker 0 hangs forever on its first job; only the wall-clock
     heartbeat can catch it. With no respawn budget the slot retires and
     the survivor absorbs the queue. *)
  let cfg =
    { test_config with
      Pool.heartbeat_s = 0.5;
      max_respawns = 0;
      sabotage = { Pool.no_sabotage with Pool.hang_after = [ (0, 0) ] } }
  in
  let o = run_pool ~cfg () in
  check_bool "hang caught by heartbeat" true
    (o.Pool.stats.Pool.heartbeat_timeouts >= 1);
  check_int "no respawn budget" 0 o.Pool.stats.Pool.respawns;
  check_bool "fingerprint equals crash-free run" true
    (pool_fps o = Lazy.force reference)

let test_pool_abort_and_resume () =
  (* A single worker with no respawn budget dies mid-run: the pool must
     abort with the typed exception, checkpointing completed shards —
     and a fresh pool must resume without re-executing them. *)
  let path = tmp "kit_test_pool_ckpt" in
  if Sys.file_exists path then Sys.remove path;
  let crash_cfg =
    { test_config with
      Pool.procs = 1;
      max_respawns = 0;
      checkpoint_path = Some path;
      checkpoint_every = 1;
      sabotage = { Pool.no_sabotage with Pool.kill_after = [ (0, 2) ] } }
  in
  (match run_pool ~cfg:crash_cfg () with
   | (_ : Pool.outcome) -> Alcotest.fail "a dead pool must abort"
   | exception Pool.Aborted { unfinished; stats } ->
     check_bool "unfinished queue reported" true (unfinished <> []);
     check_int "one death" 1 stats.Pool.deaths);
  let resume_cfg =
    { test_config with Pool.checkpoint_path = Some path; checkpoint_every = 1 }
  in
  let o = run_pool ~cfg:resume_cfg ~resume:true () in
  check_bool "completed shards restored" true (o.Pool.stats.Pool.resumed >= 2);
  check_bool "resumed fingerprint equals crash-free run" true
    (pool_fps o = Lazy.force reference);
  Sys.remove path

(* --- the jobqueue/wire typed errors (serve satellites) ------------------ *)

let test_jobqueue_deal_no_survivors () =
  let q : (string, int) Jobqueue.t = Jobqueue.create () in
  ignore (Jobqueue.submit q "a");
  ignore (Jobqueue.assign_round_robin q ~workers:1);
  let orphans = Jobqueue.release q ~worker:0 in
  check_bool "orphans returned" true (orphans <> []);
  match Jobqueue.deal q orphans ~to_:[] with
  | () -> Alcotest.fail "deal with no survivors must raise"
  | exception Jobqueue.No_survivors -> ()

let test_wire_oversized () =
  let rx, tx = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> Unix.close rx; Unix.close tx)
    (fun () ->
      (* a well-formed header announcing a frame beyond the limit: the
         typed condition a server can answer with a clean reply *)
      let header = Bytes.create 8 in
      Bytes.set_int64_be header 0 (Int64.of_int (Wire.max_frame + 1));
      ignore (Unix.write tx header 0 8);
      (match (Wire.recv rx : int option) with
      | Some _ | None -> Alcotest.fail "oversized announcement must raise"
      | exception Wire.Oversized { announced; limit } ->
        check_int "announced length" (Wire.max_frame + 1) announced;
        check_int "limit" Wire.max_frame limit);
      (* a negative length is stream garbage, not a protocol frame *)
      Bytes.set_int64_be header 0 (-1L);
      ignore (Unix.write tx header 0 8);
      check_bool "negative length is None" true
        ((Wire.recv rx : int option) = None))

(* --- the scheduler ------------------------------------------------------ *)

let campaign_fps (c : Campaign.t) =
  (multiset c.Campaign.reports, funnel_fp c.Campaign.funnel,
   multiset c.Campaign.quarantined)

(* Solo references per (seed, corpus_size): what a standalone sequential
   campaign of the tenant's spec produces. *)
let solo_cache : (int * int, Campaign.t) Hashtbl.t = Hashtbl.create 7

let solo ~seed ~corpus_size =
  match Hashtbl.find_opt solo_cache (seed, corpus_size) with
  | Some c -> c
  | None ->
    let c =
      Campaign.run { small_options with Campaign.seed; corpus_size }
    in
    Hashtbl.replace solo_cache (seed, corpus_size) c;
    c

let sched_cfg ?(procs = 2) ?(sabotage = Pool.no_sabotage) ?state_dir
    ?(ckpt_every = 1) () =
  { Sched.sc_pool = { test_config with Pool.procs; sabotage };
    sc_max_active = 4; sc_max_pending = 16; sc_state_dir = state_dir;
    sc_checkpoint_every = ckpt_every }

let spec ?(weight = 1) name seed =
  { Proto.default_spec with
    Proto.sp_name = name;
    sp_seed = seed;
    sp_corpus_size = 24;
    sp_weight = weight;
    sp_diagnose = false }

let submit_ok s sp =
  match Sched.request s (Proto.Submit sp) with
  | Proto.Accepted _ -> ()
  | Proto.Rejected why -> Alcotest.failf "submission rejected: %s" why
  | _ -> Alcotest.fail "unexpected submit reply"

let tenant_of s name =
  match Sched.find_name s name with
  | Some tn -> tn
  | None -> Alcotest.failf "tenant %s disappeared" name

let with_sched cfg f =
  let s = Sched.create cfg in
  Fun.protect ~finally:(fun () -> Sched.shutdown s) (fun () -> f s)

let prop_sched_equals_solo =
  (* The tentpole acceptance invariant: for any tenant count, weight
     vector and single-kill schedule, every tenant's report merged off
     the shared pool equals its own solo sequential campaign — funnel,
     report multiset and quarantine multiset. (Single kills only: a
     slot's sabotage is one-shot, so no case ever takes two strikes.) *)
  QCheck.Test.make ~name:"sched: every tenant = its solo campaign" ~count:4
    QCheck.(
      triple (int_range 1 3)
        (pair (int_range 1 4) (int_range 1 4))
        (pair (int_range 0 1) (int_range 1 3)))
    (fun (tenants, (w1, w2), (slot, after)) ->
      let procs = 2 in
      let cfg =
        sched_cfg ~procs
          ~sabotage:
            { Pool.no_sabotage with Pool.kill_after = [ (slot, after) ] }
          ()
      in
      with_sched cfg (fun s ->
          let seeds = List.filteri (fun i _ -> i < tenants) [ 11; 7; 5 ] in
          List.iteri
            (fun i seed ->
              let weight = if i = 0 then w1 else w2 in
              submit_ok s (spec ~weight (Printf.sprintf "t%d" i) seed))
            seeds;
          Sched.drain s;
          List.for_all
            (fun (i, seed) ->
              let tn = tenant_of s (Printf.sprintf "t%d" i) in
              match Tenant.result tn with
              | None -> false
              | Some c ->
                campaign_fps c = campaign_fps (solo ~seed ~corpus_size:24)
                && Tenant.summary tn
                   = Some (Proto.summary (solo ~seed ~corpus_size:24)))
            (List.mapi (fun i seed -> (i, seed)) seeds)))

let test_sched_fairness () =
  (* 3:1 quotas: among contended dispatches (both tenants had claimable
     work), the heavy tenant's share must converge to 0.75. *)
  with_sched (sched_cfg ~procs:2 ()) (fun s ->
      submit_ok s (spec ~weight:3 "heavy" 11);
      submit_ok s (spec ~weight:1 "light" 7);
      Sched.drain s;
      let h = Tenant.status (tenant_of s "heavy") in
      let l = Tenant.status (tenant_of s "light") in
      let hc = float_of_int h.Proto.ts_contended in
      let lc = float_of_int l.Proto.ts_contended in
      check_bool "enough contention to measure" true (hc +. lc >= 12.0);
      let share = hc /. (hc +. lc) in
      check_bool
        (Printf.sprintf "heavy contended share %.3f within 0.75±0.1" share)
        true
        (Float.abs (share -. 0.75) <= 0.1))

let rm_rf_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let test_sched_resume () =
  (* Deterministic mid-run kill: step until a few representatives have
     completed (checkpointing each), abandon the scheduler without
     finishing — a SIGKILLed daemon — and resume in a fresh one. The
     checkpointed cases replay from cache and the final report equals
     the solo run. *)
  let dir = tmp "kit_test_serve_state" in
  rm_rf_dir dir;
  let cfg = sched_cfg ~procs:1 ~state_dir:dir ~ckpt_every:1 () in
  (let s = Sched.create cfg in
   submit_ok s (spec "res" 11);
   let tn = tenant_of s "res" in
   while Tenant.completed tn < 3 && Tenant.phase tn <> Tenant.Finished do
     ignore (Sched.step s ~timeout:0.2)
   done;
   check_bool "killed mid-run" true (Tenant.phase tn = Tenant.Active);
   (* no graceful shutdown: only the per-completion checkpoints exist *)
   Sched.shutdown s);
  with_sched cfg (fun s2 ->
      let restored = Sched.resume s2 in
      check_bool "tenant restored" true (List.mem_assoc "res" restored);
      check_bool "restored unfinished" true
        (List.assoc "res" restored = "pending");
      Sched.drain s2;
      let tn = tenant_of s2 "res" in
      check_bool "checkpointed cases replayed, not re-executed" true
        (Tenant.resumed tn > 0);
      check_bool "resumed report equals solo campaign" true
        (Tenant.summary tn = Some (Proto.summary (solo ~seed:11 ~corpus_size:24))));
  rm_rf_dir dir

let test_sched_extend () =
  (* Corpus growth without re-paying finished clusters: extend a
     finished tenant and check the delta run equals a from-scratch
     campaign of the grown corpus while replaying cached clusters. *)
  with_sched (sched_cfg ~procs:2 ()) (fun s ->
      submit_ok s (spec "ext" 11);
      Sched.drain s;
      (match Sched.request s (Proto.Extend { x_name = "ext"; x_add = 8 }) with
      | Proto.Accepted _ -> ()
      | _ -> Alcotest.fail "extend of a finished tenant must be accepted");
      Sched.drain s;
      let tn = tenant_of s "ext" in
      check_bool "unchanged clusters replayed from cache" true
        (Tenant.resumed tn > 0);
      check_bool "extended report equals from-scratch grown campaign" true
        (Tenant.summary tn
        = Some (Proto.summary (solo ~seed:11 ~corpus_size:32))))

let test_sched_admission () =
  let cfg =
    { (sched_cfg ~procs:1 ()) with Sched.sc_max_pending = 1; sc_max_active = 1 }
  in
  with_sched cfg (fun s ->
      (match Sched.request s (Proto.Submit (spec "bad name!" 3)) with
      | Proto.Rejected _ -> ()
      | _ -> Alcotest.fail "invalid name must be rejected");
      submit_ok s (spec "a" 11);
      (match Sched.request s (Proto.Submit (spec "a" 7)) with
      | Proto.Rejected why ->
        check_bool "duplicate says so" true
          (String.length why > 0 && String.sub why 0 6 = "tenant")
      | _ -> Alcotest.fail "duplicate name must be rejected");
      (match Sched.request s (Proto.Submit (spec "b" 7)) with
      | Proto.Rejected _ -> ()
      | _ -> Alcotest.fail "over-bound submission must be rejected");
      (match Sched.request s (Proto.Results "a") with
      | Proto.Not_ready state -> Alcotest.(check string) "pending" "pending" state
      | _ -> Alcotest.fail "unfinished tenant results must be Not_ready");
      match Sched.request s (Proto.Results "nobody") with
      | Proto.Rejected _ -> ()
      | _ -> Alcotest.fail "unknown tenant must be rejected")

(* --- pool resume stats (satellite regression) --------------------------- *)

let test_pool_resume_all_restored () =
  (* A resume where EVERY shard restores must still report a nonzero
     resumed count — this is what `kit campaign --procs --resume` prints
     via Pool.executor's on_stats, and what the CI pool smoke greps. *)
  let path = tmp "kit_test_pool_full_ckpt" in
  if Sys.file_exists path then Sys.remove path;
  let cfg =
    { test_config with
      Pool.checkpoint_path = Some path;
      checkpoint_every = 1 }
  in
  let o1 = run_pool ~cfg () in
  check_int "fresh run restores nothing" 0 o1.Pool.stats.Pool.resumed;
  let o2 = run_pool ~cfg ~resume:true () in
  check_int "all shards restored and counted"
    (List.length o1.Pool.results)
    o2.Pool.stats.Pool.resumed;
  check_bool "restored outcome equals the original" true
    (pool_fps o2 = pool_fps o1);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "jobqueue merge order is submit order" `Quick
      test_jobqueue_submit_order;
    Alcotest.test_case "jobqueue reopen keeps position, drops result" `Quick
      test_jobqueue_reopen;
    Alcotest.test_case "jobqueue release/deal reshards deterministically"
      `Quick test_jobqueue_reshard;
    Alcotest.test_case "jobqueue quarantine retires a job for good" `Quick
      test_jobqueue_quarantine;
    Alcotest.test_case "checkpoint round-trips through KITCKPT1" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint corruption is a typed error" `Quick
      test_checkpoint_typed_errors;
    Alcotest.test_case "pool matches the sequential distrib run" `Quick
      test_pool_matches_sequential;
    Alcotest.test_case "SIGKILLed worker reshards, never aborts" `Quick
      test_pool_survives_sigkill;
    QCheck_alcotest.to_alcotest prop_pool_equals_distrib;
    Alcotest.test_case "twice-lethal case is quarantined, not retried" `Quick
      test_pool_poison_two_strikes;
    Alcotest.test_case "hung worker is caught by the heartbeat" `Quick
      test_pool_heartbeat_timeout;
    Alcotest.test_case "dead pool aborts with checkpoint; resume skips done"
      `Quick test_pool_abort_and_resume;
    Alcotest.test_case "deal with no survivors raises the typed error" `Quick
      test_jobqueue_deal_no_survivors;
    Alcotest.test_case "oversized wire frame raises the typed error" `Quick
      test_wire_oversized;
    QCheck_alcotest.to_alcotest prop_sched_equals_solo;
    Alcotest.test_case "sched holds 3:1 quotas under contention" `Quick
      test_sched_fairness;
    Alcotest.test_case "killed daemon resumes tenants from checkpoints"
      `Quick test_sched_resume;
    Alcotest.test_case "extend replays cached clusters" `Quick
      test_sched_extend;
    Alcotest.test_case "admission control rejects bad submissions" `Quick
      test_sched_admission;
    Alcotest.test_case "fully-restored pool resume reports its count" `Quick
      test_pool_resume_all_restored;
  ]
