(* Edge cases and failure injection across the pipeline: malformed
   inputs, boundary sizes, snapshot layering, cascading failures and
   degenerate configurations. *)

module K = Kit_kernel
module Program = Kit_abi.Program
module Value = Kit_abi.Value
module Sysno = Kit_abi.Sysno
module Syzlang = Kit_abi.Syzlang
module Corpus = Kit_abi.Corpus
module Spec = Kit_spec.Spec
module Cluster = Kit_gen.Cluster
module Dataflow = Kit_gen.Dataflow
module Campaign = Kit_core.Campaign
module Known_bugs = Kit_core.Known_bugs
module Distrib = Kit_core.Distrib
module Oracle = Kit_core.Oracle
module Signature = Kit_report.Signature
module Bounds = Kit_trace.Bounds
module Ast = Kit_trace.Ast
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let p = Syzlang.parse

(* --- malformed and degenerate programs ------------------------------------- *)

let test_empty_program () =
  let prog = p "" in
  check_int "zero calls" 0 (Program.length prog);
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  check_int "runs to completion" 0 (List.length (K.Interp.run k ~pid prog))

let test_out_of_range_ref () =
  (* A reference to a call index that does not exist degrades to an
     invalid fd, not a crash. *)
  let prog =
    Program.make
      [ { Program.sysno = Sysno.Get_cookie; args = [ Value.Ref 99 ] } ]
  in
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  match K.Interp.run k ~pid prog with
  | [ r ] ->
    check_bool "EBADF" true
      (match r.K.Interp.ret.K.Sysret.err with
      | Some K.Errno.EBADF -> true
      | Some _ | None -> false)
  | _ -> Alcotest.fail "expected one result"

let test_ref_argument_rejected_by_kernel () =
  (* The syscall layer itself refuses unresolved references. *)
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  let ret = K.Syscalls.exec k ~pid Sysno.Socket [ Value.Ref 0 ] in
  check_bool "EINVAL" true
    (match ret.K.Sysret.err with
    | Some K.Errno.EINVAL -> true
    | Some _ | None -> false)

let test_string_where_int_expected () =
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  let ret = K.Syscalls.exec k ~pid Sysno.Socket [ Value.Str "tcp" ] in
  check_bool "EINVAL" true (K.Sysret.is_error ret)

let test_unknown_pid_raises () =
  let k = K.State.boot (K.Config.v5_13 ()) in
  check_bool "harness bug surfaces" true
    (try
       ignore (K.Interp.run k ~pid:424242 (p "r0 = gethostname()"));
       false
     with Invalid_argument _ -> true)

(* --- snapshot layering -------------------------------------------------------- *)

let test_snapshot_layering () =
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  let run text = K.Interp.run k ~pid (p text) in
  let snap0 = K.State.snapshot k in
  let _ = run "r0 = sethostname(\"one\")" in
  let snap1 = K.State.snapshot k in
  let _ = run "r0 = sethostname(\"two\")" in
  let hostname () =
    match List.rev (run "r0 = gethostname()") with
    | last :: _ -> (
      match last.K.Interp.ret.K.Sysret.out with
      | K.Sysret.P_str s -> s
      | _ -> "?")
    | [] -> "?"
  in
  check_string "latest state" "two" (hostname ());
  K.State.restore k snap1;
  check_string "middle snapshot" "one" (hostname ());
  K.State.restore k snap0;
  check_string "oldest snapshot" "(none)" (hostname ());
  K.State.restore k snap1;
  check_string "snapshots reusable out of order" "one" (hostname ())

(* --- corpus boundaries ---------------------------------------------------------- *)

let test_corpus_size_zero () =
  check_int "empty corpus" 0 (List.length (Corpus.generate ~seed:1 ~size:0))

let test_corpus_size_one () =
  match Corpus.generate ~seed:1 ~size:1 with
  | [ prog ] -> check_bool "non-empty program" true (Program.length prog > 0)
  | l -> Alcotest.failf "expected one program, got %d" (List.length l)

let test_mutate_empty_program () =
  let rng = Random.State.make [| 3 |] in
  let empty = Program.make [] in
  for _ = 1 to 20 do
    let m = Corpus.mutate rng empty in
    check_bool "stays bounded" true (Program.length m <= 1)
  done

(* --- clustering boundaries ------------------------------------------------------- *)

let test_cluster_empty_map () =
  let map = Kit_profile.Accessmap.create () in
  let result = Cluster.run Cluster.Df_ia ~corpus_size:4 map in
  check_int "no clusters" 0 result.Cluster.clusters;
  check_int "no flows" 0 (Dataflow.total_flows map)

let test_rand_budget_exceeds_pairs () =
  let map = Kit_profile.Accessmap.create () in
  (* corpus of 2 programs -> at most 4 distinct pairs *)
  let result = Cluster.run (Cluster.Rand 1000) ~corpus_size:2 map in
  check_bool "bounded by the pair universe" true
    (List.length result.Cluster.reps <= 4)

let test_df_st_zero_depth_equals_ia () =
  (* DF-ST with depth 0 adds no context and must match DF-IA. *)
  let corpus = Corpus.generate ~seed:7 ~size:48 in
  let profiles =
    Dataflow.profile_corpus (K.Config.v5_13 ()) Spec.default corpus
  in
  let map = Dataflow.build_map profiles in
  let ia = Cluster.run Cluster.Df_ia ~corpus_size:48 map in
  let st0 = Cluster.run (Cluster.Df_st 0) ~corpus_size:48 map in
  check_int "same cluster count" ia.Cluster.clusters st0.Cluster.clusters

(* --- campaign degenerate configurations ------------------------------------------- *)

let test_campaign_without_diagnosis () =
  let c =
    Campaign.run
      { Campaign.default_options with
        Campaign.corpus_size = 64;
        diagnose = false }
  in
  check_int "no keyed reports" 0 (List.length c.Campaign.keyed);
  check_int "no groups" 0 (List.length c.Campaign.agg_rs);
  check_bool "raw reports still collected" true (c.Campaign.reports <> [])

let test_campaign_tiny_corpus () =
  let c =
    Campaign.run { Campaign.default_options with Campaign.corpus_size = 4 }
  in
  check_bool "pipeline survives a tiny corpus" true (c.Campaign.executions >= 0)

let test_distrib_more_workers_than_cases () =
  let options = { Campaign.default_options with Campaign.corpus_size = 16 } in
  let single = Campaign.run options in
  let n_cases = List.length single.Campaign.generation.Cluster.reps in
  let d =
    Distrib.execute options single.Campaign.corpus single.Campaign.generation
      ~workers:(n_cases + 5)
  in
  check_int "same reports despite idle workers"
    (List.length single.Campaign.reports)
    (List.length d.Distrib.reports)

(* --- known bugs under the refined spec ---------------------------------------------- *)

let test_known_bugs_with_refined_spec () =
  let outcomes = Known_bugs.reproduce_all ~spec:Spec.refined () in
  check_int "still 5/7" 5 (Known_bugs.detected_count outcomes);
  check_bool "still as expected" true
    (List.for_all (fun o -> o.Known_bugs.as_expected) outcomes)

(* --- attribution edges ---------------------------------------------------------------- *)

let test_oracle_b5_via_close () =
  let got =
    Oracle.attribute
      ~sender:{ Signature.name = "close"; details = [ "AF_INET_TCP" ] }
      ~receiver:{ Signature.name = "read"; details = [ "/proc/net/sockstat" ] }
  in
  check_bool "close decrements the counter" true
    (Oracle.equal_attribution got (Oracle.Bug K.Bugs.B5_sockstat_tcp))

let test_signature_int_fd_no_producer () =
  let prog = p "r0 = read(5)" in
  check_string "no producer detail" "read"
    (Signature.to_string (Signature.of_call prog 0))

(* --- bounds edges ----------------------------------------------------------------------- *)

let test_bounds_negative_interval () =
  let leaf v = Ast.node "t" [ Ast.leaf "x" (string_of_int v) ] in
  let bounds = Bounds.learn (leaf (-50)) [ leaf (-10) ] in
  match bounds.Bounds.children with
  | [ { Bounds.kind = Bounds.Interval (lo, hi); _ } ] ->
    check_bool "covers negatives" true (lo < -50 && hi > -10)
  | _ -> Alcotest.fail "expected interval"

let test_bounds_non_numeric_variation () =
  let leaf v = Ast.node "t" [ Ast.leaf "x" v ] in
  let bounds = Bounds.learn (leaf "alpha") [ leaf "beta" ] in
  match bounds.Bounds.children with
  | [ { Bounds.kind = Bounds.Unchecked; _ } ] -> ()
  | _ -> Alcotest.fail "expected unchecked"

let test_runner_custom_rerun_parameters () =
  let env = Env.create (K.Config.v5_13 ()) in
  let runner = Runner.create ~reruns:5 ~rerun_delta:911 env in
  let outcome =
    Runner.execute runner ~sender:(p "r0 = getpid()")
      ~receiver:(p "r0 = clock_gettime()")
  in
  check_bool "still masked with custom parameters" true
    (outcome.Runner.masked_diffs = [])

(* --- kernel misc ------------------------------------------------------------------------ *)

let test_errno_codes_distinct () =
  let all =
    [ K.Errno.EPERM; K.Errno.ENOENT; K.Errno.EBADF; K.Errno.EEXIST;
      K.Errno.EINVAL; K.Errno.ENFILE; K.Errno.ENOSYS; K.Errno.EADDRINUSE;
      K.Errno.EOPNOTSUPP; K.Errno.EACCES ]
  in
  let codes = List.map K.Errno.to_int all in
  check_int "distinct codes" (List.length codes)
    (List.length (List.sort_uniq Int.compare codes))

let test_heap_cell_count_grows () =
  let heap = K.Heap.create () in
  let before = K.Heap.cell_count heap in
  let _ = K.Var.alloc heap ~name:"x" 0 in
  check_int "registered" (before + 1) (K.Heap.cell_count heap)

let test_var_metadata () =
  let heap = K.Heap.create () in
  let v = K.Var.alloc heap ~name:"meta" ~width:4 ~instrumented:false 0 in
  check_string "name" "meta" (K.Var.name v);
  check_int "width" 4 (K.Var.width v);
  check_bool "instrumented" false (K.Var.instrumented v)

let test_creat_on_proc_rejected () =
  let k = K.State.boot (K.Config.v5_13 ()) in
  let pid = K.State.spawn_container k in
  match List.rev (K.Interp.run k ~pid (p "r0 = creat(\"/proc/net/new\")")) with
  | last :: _ ->
    check_bool "EACCES" true
      (match last.K.Interp.ret.K.Sysret.err with
      | Some K.Errno.EACCES -> true
      | Some _ | None -> false)
  | [] -> Alcotest.fail "no result"

let suite =
  [
    Alcotest.test_case "edge: empty program" `Quick test_empty_program;
    Alcotest.test_case "edge: out-of-range resource ref" `Quick
      test_out_of_range_ref;
    Alcotest.test_case "edge: unresolved ref rejected by kernel" `Quick
      test_ref_argument_rejected_by_kernel;
    Alcotest.test_case "edge: string where int expected" `Quick
      test_string_where_int_expected;
    Alcotest.test_case "edge: unknown pid surfaces as harness bug" `Quick
      test_unknown_pid_raises;
    Alcotest.test_case "edge: snapshot layering" `Quick test_snapshot_layering;
    Alcotest.test_case "edge: corpus size zero" `Quick test_corpus_size_zero;
    Alcotest.test_case "edge: corpus size one" `Quick test_corpus_size_one;
    Alcotest.test_case "edge: mutate empty program" `Quick
      test_mutate_empty_program;
    Alcotest.test_case "edge: cluster empty map" `Quick test_cluster_empty_map;
    Alcotest.test_case "edge: RAND budget exceeds pair universe" `Quick
      test_rand_budget_exceeds_pairs;
    Alcotest.test_case "edge: DF-ST-0 equals DF-IA" `Quick
      test_df_st_zero_depth_equals_ia;
    Alcotest.test_case "edge: campaign without diagnosis" `Slow
      test_campaign_without_diagnosis;
    Alcotest.test_case "edge: campaign with tiny corpus" `Quick
      test_campaign_tiny_corpus;
    Alcotest.test_case "edge: more workers than test cases" `Quick
      test_distrib_more_workers_than_cases;
    Alcotest.test_case "edge: known bugs under refined spec" `Slow
      test_known_bugs_with_refined_spec;
    Alcotest.test_case "edge: oracle B5 via close" `Quick test_oracle_b5_via_close;
    Alcotest.test_case "edge: signature with raw int fd" `Quick
      test_signature_int_fd_no_producer;
    Alcotest.test_case "edge: bounds with negative values" `Quick
      test_bounds_negative_interval;
    Alcotest.test_case "edge: bounds with non-numeric variation" `Quick
      test_bounds_non_numeric_variation;
    Alcotest.test_case "edge: custom rerun parameters" `Quick
      test_runner_custom_rerun_parameters;
    Alcotest.test_case "edge: errno codes distinct" `Quick
      test_errno_codes_distinct;
    Alcotest.test_case "edge: heap cell registration" `Quick
      test_heap_cell_count_grows;
    Alcotest.test_case "edge: var metadata" `Quick test_var_metadata;
    Alcotest.test_case "edge: creat on /proc rejected" `Quick
      test_creat_on_proc_rejected;
  ]
