(* Tests for the partial specification: fd-type rules, checker functions
   and per-call protected-resource classification. *)

module Spec = Kit_spec.Spec
module Checker = Kit_spec.Checker
module Fdtype = Kit_abi.Fdtype
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int

let protected_of text = Spec.protected_indices Spec.default (Syzlang.parse text)

let test_socket_calls_protected () =
  check (Alcotest.list Alcotest.int) "socket returns protected fd" [ 0; 1 ]
    (protected_of "r0 = socket(1)\nr1 = get_cookie(r0)")

let test_procfs_net_read_protected () =
  check (Alcotest.list Alcotest.int) "open+read protected" [ 0; 1 ]
    (protected_of "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)")

let test_clock_gettime_unprotected () =
  check (Alcotest.list Alcotest.int) "timing call not protected" []
    (protected_of "r0 = clock_gettime()")

let test_getpid_unprotected () =
  check (Alcotest.list Alcotest.int) "getpid not protected" []
    (protected_of "r0 = getpid()")

let test_somaxconn_unprotected () =
  check (Alcotest.list Alcotest.int) "somaxconn left unprotected" []
    (protected_of "r0 = sysctl_read(\"net/somaxconn\")")

let test_conntrack_sysctl_protected () =
  check (Alcotest.list Alcotest.int) "conntrack sysctl checker" [ 0 ]
    (protected_of "r0 = sysctl_read(\"net/nf_conntrack_max\")")

let test_prio_user_checker () =
  check (Alcotest.list Alcotest.int) "PRIO_USER protected" [ 0 ]
    (protected_of "r0 = getpriority(2, 1000)");
  check (Alcotest.list Alcotest.int) "PRIO_PROCESS not protected" []
    (protected_of "r0 = getpriority(0, 1000)")

let test_hostname_checker () =
  check (Alcotest.list Alcotest.int) "gethostname protected" [ 0 ]
    (protected_of "r0 = gethostname()");
  check (Alcotest.list Alcotest.int) "sethostname protected" [ 0 ]
    (protected_of "r0 = sethostname(\"h\")")

let test_mount_path_checker () =
  check (Alcotest.list Alcotest.int) "io_uring on /tmp protected" [ 0 ]
    (protected_of "r0 = io_uring_read(\"/tmp/kit0\")")

let test_token_unprotected () =
  check (Alcotest.list Alcotest.int) "token calls not protected" []
    (protected_of "r0 = token_stat(7)")

let test_sock_diag_unprotected () =
  check (Alcotest.list Alcotest.int) "sock_diag not protected" []
    (protected_of "r0 = sock_diag(3)")

let test_default_overapproximates_proc_misc () =
  check (Alcotest.list Alcotest.int) "crypto read counted (FP source)" [ 0; 1 ]
    (protected_of "r0 = open(\"/proc/crypto\")\nr1 = read(r0)")

let test_refined_drops_proc_misc () =
  let p = Syzlang.parse "r0 = open(\"/proc/crypto\")\nr1 = read(r0)" in
  check (Alcotest.list Alcotest.int) "refined spec excludes crypto" []
    (Spec.protected_indices Spec.refined p);
  let net = Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  check (Alcotest.list Alcotest.int) "refined spec keeps /proc/net" [ 0; 1 ]
    (Spec.protected_indices Spec.refined net)

let test_uses_protected_via_ref () =
  check (Alcotest.list Alcotest.int) "bind via rds fd" [ 0; 1 ]
    (protected_of "r0 = socket(4)\nr1 = bind(r0, 1000)")

let test_rule_counts () =
  let fd_rules, checkers = Spec.rule_counts Spec.default in
  check_bool "several fd-type rules" true (fd_rules >= 10);
  check_int "checker functions" (List.length Checker.defaults) checkers

let test_checker_ids_unique () =
  let ids = List.map (fun c -> c.Checker.id) Checker.defaults in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids))

let test_out_of_range_index () =
  let p = Syzlang.parse "r0 = getpid()" in
  let types = Program.result_types p in
  check_bool "index out of range is unprotected" false
    (Spec.call_protected Spec.default p types 5)

let suite =
  [
    Alcotest.test_case "spec: sockets protected" `Quick test_socket_calls_protected;
    Alcotest.test_case "spec: /proc/net reads protected" `Quick
      test_procfs_net_read_protected;
    Alcotest.test_case "spec: clock_gettime unprotected" `Quick
      test_clock_gettime_unprotected;
    Alcotest.test_case "spec: getpid unprotected" `Quick test_getpid_unprotected;
    Alcotest.test_case "spec: somaxconn unprotected" `Quick
      test_somaxconn_unprotected;
    Alcotest.test_case "spec: conntrack sysctl checker" `Quick
      test_conntrack_sysctl_protected;
    Alcotest.test_case "spec: PRIO_USER checker" `Quick test_prio_user_checker;
    Alcotest.test_case "spec: hostname checker" `Quick test_hostname_checker;
    Alcotest.test_case "spec: mount path checker" `Quick test_mount_path_checker;
    Alcotest.test_case "spec: tokens unprotected" `Quick test_token_unprotected;
    Alcotest.test_case "spec: sock_diag unprotected" `Quick
      test_sock_diag_unprotected;
    Alcotest.test_case "spec: default over-approximates /proc (FP source)"
      `Quick test_default_overapproximates_proc_misc;
    Alcotest.test_case "spec: refined drops /proc over-approximation" `Quick
      test_refined_drops_proc_misc;
    Alcotest.test_case "spec: protection via resource refs" `Quick
      test_uses_protected_via_ref;
    Alcotest.test_case "spec: rule counts" `Quick test_rule_counts;
    Alcotest.test_case "spec: checker ids unique" `Quick test_checker_ids_unique;
    Alcotest.test_case "spec: out-of-range index" `Quick test_out_of_range_index;
  ]
