(* Equivalence gates for the compact hot-path representations: the
   packed trace comparison against a reference Algorithm 1 on the legacy
   node layout, the packed bitsets against a Set.Make(Int) model,
   fingerprint stability across processes, and migration of a
   pre-packing serve-tenant checkpoint. *)

module Ast = Kit_trace.Ast
module L = Kit_trace.Ast.Legacy
module Compare = Kit_trace.Compare
module Nondet = Kit_trace.Nondet
module Bitset = Kit_compact.Bitset
module Testcase = Kit_gen.Testcase
module Campaign = Kit_core.Campaign
module Checkpoint = Kit_core.Checkpoint
module Proto = Kit_serve.Proto
module Tenant = Kit_serve.Tenant
module Report = Kit_detect.Report
module Obs = Kit_obs.Obs
module Tracer = Kit_obs.Tracer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- reference implementations on the legacy layout --------------------

   These re-state the pre-packing algorithms verbatim over the legacy
   record: no content hashes, no physical equality, no precomputed child
   counts. The properties below check the packed code paths agree with
   them on random tree pairs. *)

let rec ref_size (t : L.ast) =
  List.fold_left (fun acc c -> acc + ref_size c) 1 t.L.l_children

let ref_diff_trees (ta : L.ast) (tb : L.ast) =
  let rec cmp path (ta : L.ast) (tb : L.ast) acc =
    if not (ta.L.l_det && tb.L.l_det) then acc
    else if
      (not (String.equal ta.L.l_value tb.L.l_value))
      || List.length ta.L.l_children <> List.length tb.L.l_children
    then (List.rev (ta.L.l_label :: path), ta, tb) :: acc
    else
      List.fold_left2
        (fun acc ca cb -> cmp (ta.L.l_label :: path) ca cb acc)
        acc ta.L.l_children tb.L.l_children
  in
  List.rev (cmp [] ta tb [])

let rec ref_mark (reference : L.ast) alternatives =
  let disagrees (alt : L.ast) =
    (not (String.equal alt.L.l_value reference.L.l_value))
    || List.length alt.L.l_children <> List.length reference.L.l_children
  in
  if List.exists disagrees alternatives then
    { reference with L.l_det = false }
  else
    let children =
      List.mapi
        (fun i c ->
          ref_mark c
            (List.map (fun (a : L.ast) -> List.nth a.L.l_children i)
               alternatives))
        reference.L.l_children
    in
    { reference with L.l_children = children }

let rec ref_apply_mask (mask : L.ast) (tree : L.ast) =
  let det = tree.L.l_det && mask.L.l_det in
  if not det then { tree with L.l_det = false }
  else
    let rec walk mkids tkids =
      match (mkids, tkids) with
      | _, [] -> []
      | [], extra -> extra
      | m :: ms, c :: cs -> ref_apply_mask m c :: walk ms cs
    in
    { tree with
      L.l_det = det;
      L.l_children = walk mask.L.l_children tree.L.l_children }

(* --- random legacy trees and structure-preserving mutations ------------ *)

let labels =
  [| "trace"; "call0:open"; "call1:read"; "call2:stat"; "ret"; "errno";
     "size"; "arg0"; "arg1"; "ino" |]

let values = [| ""; "0"; "1"; "2"; "3"; "-1"; "0x1000"; "ENOENT"; "437" |]

let pick arr st = arr.(Random.State.int st (Array.length arr))

let rec gen_legacy depth st =
  let l_label = pick labels st in
  let l_det = Random.State.int st 8 <> 0 in
  if depth = 0 || Random.State.int st 3 = 0 then
    { L.l_label; l_value = pick values st; l_det; l_children = [] }
  else
    let n = 1 + Random.State.int st 3 in
    { L.l_label; l_value = ""; l_det;
      l_children = List.init n (fun _ -> gen_legacy (depth - 1) st) }

(* Mutate a tree into a related one: most nodes survive untouched, some
   change value or det flag, a few are replaced wholesale (changing the
   shape), so diffs occur at realistic density. *)
let rec mutate (t : L.ast) st =
  if Random.State.int st 8 = 0 then gen_legacy 2 st
  else
    let l_value =
      if Random.State.int st 6 = 0 then pick values st else t.L.l_value
    in
    let l_det =
      if Random.State.int st 8 = 0 then not t.L.l_det else t.L.l_det
    in
    let l_children =
      List.map
        (fun c -> if Random.State.int st 3 = 0 then mutate c st else c)
        t.L.l_children
    in
    { t with L.l_value; l_det; l_children }

let gen_pair st =
  let a = gen_legacy 4 st in
  let b = if Random.State.int st 4 = 0 then a else mutate a st in
  (a, b)

let rec pp_legacy ppf (t : L.ast) =
  Fmt.pf ppf "(%s=%S%s %a)" t.L.l_label t.L.l_value
    (if t.L.l_det then "" else "!")
    (Fmt.list ~sep:Fmt.sp pp_legacy)
    t.L.l_children

let arbitrary_pair =
  QCheck.make
    ~print:(fun (a, b) -> Fmt.str "%a@.%a" pp_legacy a pp_legacy b)
    gen_pair

let arbitrary_marked =
  QCheck.make
    ~print:(fun (r, alts) ->
      Fmt.str "%a@.%a" pp_legacy r (Fmt.list pp_legacy) alts)
    (fun st ->
      let r = gen_legacy 4 st in
      let n = 1 + Random.State.int st 3 in
      (r, List.init n (fun _ -> if Random.State.int st 3 = 0 then r
                                else mutate r st)))

(* --- packed vs reference properties ------------------------------------ *)

let prop_roundtrip =
  QCheck.Test.make ~name:"of_legacy/to_legacy roundtrip" ~count:200
    arbitrary_pair (fun (a, _) -> Ast.to_legacy (Ast.of_legacy a) = a)

let prop_packed_counters =
  QCheck.Test.make ~name:"packed size/nkids match a direct walk" ~count:200
    arbitrary_pair (fun (a, _) ->
      let p = Ast.of_legacy a in
      Ast.size p = ref_size a
      && p.Ast.nkids = List.length a.L.l_children)

let prop_diff_equals_reference =
  QCheck.Test.make ~name:"diff_trees = reference Algorithm 1" ~count:500
    arbitrary_pair (fun (a, b) ->
      let packed = Compare.diff_trees (Ast.of_legacy a) (Ast.of_legacy b) in
      let refd = ref_diff_trees a b in
      List.length packed = List.length refd
      && List.for_all2
           (fun (d : Compare.diff) (path, l, r) ->
             d.Compare.path = path
             && Ast.to_legacy d.Compare.left = l
             && Ast.to_legacy d.Compare.right = r)
           packed refd)

let prop_interfered_equals_reference =
  QCheck.Test.make ~name:"interfered_indices = indices of reference diffs"
    ~count:500 arbitrary_pair (fun (a, b) ->
      let pa = Ast.of_legacy a and pb = Ast.of_legacy b in
      Compare.interfered_indices pa pb
      = Compare.interfered_of_diffs (Compare.diff_trees pa pb))

let prop_mark_equals_reference =
  QCheck.Test.make ~name:"Nondet.mark = reference mark" ~count:500
    arbitrary_marked (fun (r, alts) ->
      let packed =
        Nondet.mark (Ast.of_legacy r) (List.map Ast.of_legacy alts)
      in
      Ast.to_legacy packed = ref_mark r alts)

let prop_apply_mask_equals_reference =
  QCheck.Test.make ~name:"Nondet.apply_mask = reference apply" ~count:500
    arbitrary_pair (fun (mask, tree) ->
      let packed =
        Nondet.apply_mask (Ast.of_legacy mask) (Ast.of_legacy tree)
      in
      Ast.to_legacy packed = ref_apply_mask mask tree)

(* --- bitsets vs a Set.Make(Int) model ----------------------------------- *)

module IntSet = Set.Make (Int)

let gen_ops st =
  List.init (Random.State.int st 120) (fun _ ->
      (Random.State.int st 3, Random.State.int st 400))

let apply_ops ops =
  let bs = Bitset.create 64 and model = ref IntSet.empty in
  List.iter
    (fun (op, v) ->
      match op with
      | 0 -> Bitset.add bs v; model := IntSet.add v !model
      | 1 -> Bitset.remove bs v; model := IntSet.remove v !model
      | _ -> ())
    ops;
  (bs, !model)

let arbitrary_ops =
  QCheck.make
    ~print:(fun (a, b) ->
      Fmt.str "%a / %a"
        Fmt.(list (pair int int))
        a
        Fmt.(list (pair int int))
        b)
    (fun st -> (gen_ops st, gen_ops st))

let prop_bitset_model =
  QCheck.Test.make ~name:"bitset ops = Set.Make(Int) model" ~count:500
    arbitrary_ops (fun (ops_a, ops_b) ->
      let bs_a, m_a = apply_ops ops_a and bs_b, m_b = apply_ops ops_b in
      Bitset.elements bs_a = IntSet.elements m_a
      && Bitset.cardinal bs_a = IntSet.cardinal m_a
      && Bitset.is_empty bs_a = IntSet.is_empty m_a
      && Bitset.inter_count bs_a bs_b
         = IntSet.cardinal (IntSet.inter m_a m_b)
      && Bitset.elements (Bitset.inter bs_a bs_b)
         = IntSet.elements (IntSet.inter m_a m_b)
      && Bitset.elements (Bitset.union bs_a bs_b)
         = IntSet.elements (IntSet.union m_a m_b)
      && List.for_all (fun v -> Bitset.mem bs_a v = IntSet.mem v m_a)
           (List.init 400 Fun.id))

(* --- fingerprints -------------------------------------------------------- *)

let sample_testcases =
  [ { Testcase.sender = 3; receiver = 5; flow = None };
    { Testcase.sender = 0; receiver = 7;
      flow =
        Some
          { Testcase.addr = 0x1040; w_ip = 12; r_ip = 34;
            w_stack = [ 1; 2; 3 ]; r_stack = [ 4; 5 ]; r_sys_index = 2 } };
    { Testcase.sender = 11; receiver = 11;
      flow =
        Some
          { Testcase.addr = 0x2000; w_ip = 9; r_ip = 9; w_stack = [];
            r_stack = [ 0 ]; r_sys_index = 0 } } ]

let test_fingerprint_shape () =
  List.iter
    (fun tc ->
      let fp = Tenant.fingerprint tc in
      check_string "recompute is stable" fp (Tenant.fingerprint tc);
      check_int "16 hex chars" 16 (String.length fp);
      String.iter
        (fun c ->
          check_bool "hex digit" true
            ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
        fp)
    sample_testcases;
  let fps = List.map Tenant.fingerprint sample_testcases in
  check_int "distinct testcases get distinct fingerprints"
    (List.length fps)
    (List.length (List.sort_uniq compare fps))

(* The cache key must not depend on process identity: re-execute the
   test binary (the same spawn mechanism the worker pool uses — raw
   [Unix.fork] is unavailable once any domain has been spawned), have
   the child print the same fingerprints, and compare. The legacy
   MD5-of-Marshal scheme had this property too; the FNV scheme must
   keep it for daemon checkpoints to replay across restarts. *)
let fp_env_var = "KIT_TEST_FP_CHILD"

let fp_view () =
  String.concat ";"
    (List.map Tenant.fingerprint sample_testcases
    @ List.map Tenant.fingerprint_legacy sample_testcases)

(* Trampoline called from test_kit.ml before alcotest sees argv. The
   view goes to a file, not stdout — other suites print banners at
   module initialization, before this entry runs. *)
let child_entry () =
  match Sys.getenv_opt fp_env_var with
  | None -> ()
  | Some path ->
    let oc = open_out_bin path in
    output_string oc (fp_view ());
    close_out oc;
    exit 0

let test_fingerprint_cross_process () =
  let parent_view = fp_view () in
  let path = Filename.temp_file "kit-fp-child" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let pid =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          (Array.append (Unix.environment ())
             [| fp_env_var ^ "=" ^ path |])
          Unix.stdin Unix.stdout Unix.stderr
      in
      let _, status = Unix.waitpid [] pid in
      check_bool "child exited cleanly" true (status = Unix.WEXITED 0);
      let ic = open_in_bin path in
      let child_view =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check_string "child sees identical fingerprints" parent_view
        child_view)

(* --- legacy serve-tenant checkpoint migration ---------------------------

   Fabricate a checkpoint byte-for-byte like a pre-packing daemon wrote:
   legacy Ast nodes inside the reports, cache keyed by MD5-of-Marshal
   fingerprints, saved under the old KITCKPT1 kind. Loading it must
   migrate in place — packed nodes rebuilt, cache re-keyed — and
   re-activation must replay every migrated entry from cache. *)

let compat_spec =
  { Proto.default_spec with
    Proto.sp_name = "compat"; sp_seed = 7; sp_corpus_size = 24;
    sp_diagnose = false }

(* Pre-v3 specs have no [sp_schedules]; fabricated old-format files use
   this layout. *)
let legacy_spec_of (s : Proto.spec) =
  { Tenant.lsp_name = s.Proto.sp_name;
    lsp_seed = s.Proto.sp_seed;
    lsp_corpus_size = s.Proto.sp_corpus_size;
    lsp_strategy = s.Proto.sp_strategy;
    lsp_weight = s.Proto.sp_weight;
    lsp_max_inflight = s.Proto.sp_max_inflight;
    lsp_diagnose = s.Proto.sp_diagnose }

let legacy_of_diff (d : Compare.diff) =
  { Tenant.Legacy.ld_path = d.Compare.path;
    ld_left = Ast.to_legacy d.Compare.left;
    ld_right = Ast.to_legacy d.Compare.right }

let legacy_of_report (r : Report.t) =
  { Tenant.Legacy.lr_testcase = r.Report.testcase;
    lr_sender = r.Report.sender;
    lr_receiver = r.Report.receiver;
    lr_interfered = r.Report.interfered;
    lr_diffs = List.map legacy_of_diff r.Report.diffs;
    lr_trace_a = Ast.to_legacy r.Report.trace_a;
    lr_trace_b = Ast.to_legacy r.Report.trace_b }

let legacy_of_case (cr : Campaign.case_result) =
  { Tenant.Legacy.lc_tc = cr.Campaign.cr_tc;
    lc_funnel = cr.Campaign.cr_funnel;
    lc_report = Option.map legacy_of_report cr.Campaign.cr_report;
    lc_crashes = cr.Campaign.cr_crashes }

let marshal_fp x = Digest.string (Marshal.to_string x [ Marshal.No_sharing ])

let test_legacy_checkpoint_migrates () =
  (* Real case results for the spec's first two representatives, so the
     migrated cache keys match what re-activation generates. *)
  let scratch = Tenant.create ~id:1 compat_spec in
  let options, corpus = Tenant.activate scratch ~procs:1 in
  let rec claim_all acc =
    match Tenant.claim scratch ~slot:0 with
    | Some job -> claim_all (job :: acc)
    | None -> List.rev acc
  in
  let jobs = claim_all [] in
  check_bool "spec generates enough representatives" true
    (List.length jobs >= 2);
  let obs = Obs.create ~tracer:Tracer.nop () in
  let sup = Campaign.supervisor ~obs options in
  let executed =
    List.map
      (fun (_, tc) -> Campaign.exec_case options corpus sup tc)
      (List.filteri (fun i _ -> i < 2) jobs)
  in
  (* The legacy round trip itself must be lossless. *)
  List.iter
    (fun cr ->
      check_string "legacy case_result converts back losslessly"
        (marshal_fp cr)
        (marshal_fp (Tenant.Legacy.case_result_of (legacy_of_case cr))))
    executed;
  let ck =
    { Tenant.Legacy.lk_spec = legacy_spec_of compat_spec;
      lk_completed =
        List.map
          (fun cr ->
            ( Tenant.fingerprint_legacy cr.Campaign.cr_tc,
              (legacy_of_case cr, 1) ))
          executed;
      lk_finished = false;
      lk_summary = None }
  in
  let path = Filename.temp_file "kit-tenant-legacy" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Checkpoint.save path ~kind:Tenant.ckpt_kind_legacy ck;
      match Tenant.of_checkpoint ~id:2 path with
      | Error e -> Alcotest.failf "legacy checkpoint rejected: %s" e
      | Ok t ->
        check_bool "migrated tenant comes back pending" true
          (Tenant.phase t = Tenant.Pending);
        let _ = Tenant.activate t ~procs:1 in
        check_int "every migrated entry replays from cache" 2
          (Tenant.resumed t);
        check_int "replayed entries are completed" 2 (Tenant.completed t);
        (* A fresh save of the migrated tenant writes the current kind
           and reloads without the legacy probe, cache intact. *)
        let dir = Filename.temp_file "kit-tenant-v3" "" in
        Sys.remove dir;
        Unix.mkdir dir 0o700;
        Fun.protect
          ~finally:(fun () ->
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Unix.rmdir dir)
          (fun () ->
            Tenant.save_checkpoint dir t;
            match Tenant.of_checkpoint ~id:3 (Tenant.ckpt_path dir t) with
            | Error e -> Alcotest.failf "re-saved checkpoint rejected: %s" e
            | Ok t2 ->
              let _ = Tenant.activate t2 ~procs:1 in
              check_int "re-saved reload replays the same cache" 2
                (Tenant.resumed t2)))

(* Fabricate a checkpoint exactly as a v2 (pre-scheduler) daemon wrote
   it: packed trace nodes, but reports without an origin, case results
   without the schedule-search fields and a spec without [sp_schedules].
   Loading must migrate it — sequential origins, empty search results,
   schedules = 1 — with the cache keys carried over unchanged. *)
let v2_of_report (r : Report.t) =
  { Tenant.V2.v2r_testcase = r.Report.testcase;
    v2r_sender = r.Report.sender;
    v2r_receiver = r.Report.receiver;
    v2r_interfered = r.Report.interfered;
    v2r_diffs = r.Report.diffs;
    v2r_trace_a = r.Report.trace_a;
    v2r_trace_b = r.Report.trace_b }

let v2_of_case (cr : Campaign.case_result) =
  { Tenant.V2.v2c_tc = cr.Campaign.cr_tc;
    v2c_funnel = cr.Campaign.cr_funnel;
    v2c_report = Option.map v2_of_report cr.Campaign.cr_report;
    v2c_crashes = cr.Campaign.cr_crashes }

let test_v2_checkpoint_migrates () =
  let scratch = Tenant.create ~id:1 compat_spec in
  let options, corpus = Tenant.activate scratch ~procs:1 in
  let rec claim_all acc =
    match Tenant.claim scratch ~slot:0 with
    | Some job -> claim_all (job :: acc)
    | None -> List.rev acc
  in
  let jobs = claim_all [] in
  let obs = Obs.create ~tracer:Tracer.nop () in
  let sup = Campaign.supervisor ~obs options in
  let executed =
    List.map
      (fun (_, tc) -> Campaign.exec_case options corpus sup tc)
      (List.filteri (fun i _ -> i < 2) jobs)
  in
  (* The v2 round trip itself must be lossless on sequential results. *)
  List.iter
    (fun cr ->
      check_string "v2 case_result converts back losslessly" (marshal_fp cr)
        (marshal_fp (Tenant.V2.case_result_of (v2_of_case cr))))
    executed;
  let ck =
    { Tenant.V2.v2k_spec = legacy_spec_of compat_spec;
      v2k_completed =
        List.map
          (fun cr ->
            (Tenant.fingerprint cr.Campaign.cr_tc, (v2_of_case cr, 1)))
          executed;
      v2k_finished = false;
      v2k_summary = None }
  in
  let path = Filename.temp_file "kit-tenant-v2compat" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Checkpoint.save path ~kind:Tenant.ckpt_kind_v2 ck;
      match Tenant.of_checkpoint ~id:2 path with
      | Error e -> Alcotest.failf "v2 checkpoint rejected: %s" e
      | Ok t ->
        check_bool "migrated tenant comes back pending" true
          (Tenant.phase t = Tenant.Pending);
        check_int "migrated spec is sequential-only" 1
          (Tenant.spec t).Proto.sp_schedules;
        let _ = Tenant.activate t ~procs:1 in
        check_int "every migrated v2 entry replays from cache" 2
          (Tenant.resumed t))

let test_legacy_kind_is_distinct () =
  check_bool "kind bumped past legacy" true
    (not (String.equal Tenant.ckpt_kind Tenant.ckpt_kind_legacy));
  check_bool "kind bumped past v2" true
    (not (String.equal Tenant.ckpt_kind Tenant.ckpt_kind_v2))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_packed_counters;
    QCheck_alcotest.to_alcotest prop_diff_equals_reference;
    QCheck_alcotest.to_alcotest prop_interfered_equals_reference;
    QCheck_alcotest.to_alcotest prop_mark_equals_reference;
    QCheck_alcotest.to_alcotest prop_apply_mask_equals_reference;
    QCheck_alcotest.to_alcotest prop_bitset_model;
    Alcotest.test_case "fingerprint: stable, hex, collision-free" `Quick
      test_fingerprint_shape;
    Alcotest.test_case "fingerprint: identical across processes" `Quick
      test_fingerprint_cross_process;
    Alcotest.test_case "checkpoint: legacy serve-tenant file migrates"
      `Quick test_legacy_checkpoint_migrates;
    Alcotest.test_case "checkpoint: v2 serve-tenant file migrates" `Quick
      test_v2_checkpoint_migrates;
    Alcotest.test_case "checkpoint: kind bumped for new layouts" `Quick
      test_legacy_kind_is_distinct;
  ]
