(* Tests for detection: the report filtering funnel and its verdicts. *)

module K = Kit_kernel
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Filter = Kit_detect.Filter
module Report = Kit_detect.Report
module Spec = Kit_spec.Spec
module Testcase = Kit_gen.Testcase
module Syzlang = Kit_abi.Syzlang

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let p = Syzlang.parse
let tc = { Testcase.sender = 0; receiver = 0; flow = None }

let classify ?(config = K.Config.v5_13 ()) ?(spec = Spec.default) sender_text
    receiver_text funnel =
  let env = Env.create config in
  let runner = Runner.create env in
  let sender = p sender_text in
  let receiver = p receiver_text in
  let outcome = Runner.execute runner ~sender ~receiver in
  Filter.classify spec ~testcase:tc ~sender ~receiver outcome funnel

let test_verdict_reported () =
  let funnel = Filter.funnel_create () in
  match
    classify "r0 = socket(3)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)"
      funnel
  with
  | Filter.Reported r ->
    check (Alcotest.list Alcotest.int) "interfered" [ 1 ] r.Report.interfered
  | _ -> Alcotest.fail "expected a report"

let test_verdict_no_divergence () =
  let funnel = Filter.funnel_create () in
  match classify "r0 = getpid()" "r0 = getpid()" funnel with
  | Filter.No_divergence -> check_int "not initial" 0 funnel.Filter.initial
  | _ -> Alcotest.fail "expected no divergence"

let test_verdict_nondet_filtered () =
  let funnel = Filter.funnel_create () in
  match classify "r0 = getpid()" "r0 = clock_gettime()" funnel with
  | Filter.Filtered_nondet ->
    check_int "counted as initial" 1 funnel.Filter.initial;
    check_int "removed by non-det stage" 0 funnel.Filter.after_nondet
  | _ -> Alcotest.fail "expected non-det filtering"

let test_verdict_resource_filtered () =
  (* somaxconn is global by design and unprotected: a deterministic
     divergence on it alone must be removed by the resource filter. *)
  let funnel = Filter.funnel_create () in
  match
    classify "r0 = sysctl_write(\"net/somaxconn\", 7)"
      "r0 = sysctl_read(\"net/somaxconn\")" funnel
  with
  | Filter.Filtered_resource ->
    check_int "survived non-det" 1 funnel.Filter.after_nondet;
    check_int "removed by resource stage" 0 funnel.Filter.after_resource
  | _ -> Alcotest.fail "expected resource filtering"

let test_report_restricted_to_protected () =
  (* When a protected and an unprotected call both diverge, the report
     keeps only the protected one. *)
  let funnel = Filter.funnel_create () in
  match
    classify
      "r0 = sysctl_write(\"net/somaxconn\", 7)\nr1 = socket(1)"
      "r0 = sysctl_read(\"net/somaxconn\")\nr1 = open(\"/proc/net/sockstat\")\nr2 = read(r1)"
      funnel
  with
  | Filter.Reported r ->
    check (Alcotest.list Alcotest.int) "only the sockstat read" [ 2 ]
      r.Report.interfered
  | _ -> Alcotest.fail "expected a report"

let test_funnel_accumulates () =
  let funnel = Filter.funnel_create () in
  let _ = classify "r0 = getpid()" "r0 = getpid()" funnel in
  let _ = classify "r0 = getpid()" "r0 = clock_gettime()" funnel in
  let _ =
    classify "r0 = socket(3)" "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)"
      funnel
  in
  check_int "executed" 3 funnel.Filter.executed;
  check_int "initial" 2 funnel.Filter.initial;
  check_int "after nondet" 1 funnel.Filter.after_nondet;
  check_int "after resource" 1 funnel.Filter.after_resource

let test_funnel_monotone () =
  let f = Filter.funnel_create () in
  f.Filter.executed <- 10;
  f.Filter.initial <- 5;
  f.Filter.after_nondet <- 3;
  f.Filter.after_resource <- 2;
  check_bool "funnel narrows" true
    (f.Filter.executed >= f.Filter.initial
    && f.Filter.initial >= f.Filter.after_nondet
    && f.Filter.after_nondet >= f.Filter.after_resource)

let test_protected_interfered_helper () =
  let receiver =
    p "r0 = clock_gettime()\nr1 = open(\"/proc/net/ptype\")\nr2 = read(r1)"
  in
  check (Alcotest.list Alcotest.int) "filters unprotected indices" [ 1; 2 ]
    (Filter.protected_interfered Spec.default receiver [ 0; 1; 2 ])

let suite =
  [
    Alcotest.test_case "filter: genuine interference reported" `Quick
      test_verdict_reported;
    Alcotest.test_case "filter: no divergence" `Quick test_verdict_no_divergence;
    Alcotest.test_case "filter: non-determinism filtered" `Quick
      test_verdict_nondet_filtered;
    Alcotest.test_case "filter: unprotected resource filtered" `Quick
      test_verdict_resource_filtered;
    Alcotest.test_case "filter: report restricted to protected calls" `Quick
      test_report_restricted_to_protected;
    Alcotest.test_case "filter: funnel accumulates" `Quick test_funnel_accumulates;
    Alcotest.test_case "filter: funnel monotone" `Quick test_funnel_monotone;
    Alcotest.test_case "filter: protected_interfered helper" `Quick
      test_protected_interfered_helper;
  ]
