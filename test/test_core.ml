(* Tests for the top-level pipeline: attribution oracle, known-bug
   reproduction, end-to-end campaigns and the table generators. *)

module K = Kit_kernel
module Campaign = Kit_core.Campaign
module Oracle = Kit_core.Oracle
module Known_bugs = Kit_core.Known_bugs
module Tables = Kit_core.Tables
module Cluster = Kit_gen.Cluster
module Aggregate = Kit_report.Aggregate
module Signature = Kit_report.Signature
module Spec = Kit_spec.Spec
module Filter = Kit_detect.Filter

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let sig_ name details = { Signature.name; details }

(* --- Oracle ---------------------------------------------------------------- *)

let check_attr expected sender receiver =
  let got = Oracle.attribute ~sender ~receiver in
  check_bool
    (Printf.sprintf "%s -> %s" (Signature.to_string sender)
       (Signature.to_string receiver))
    true
    (Oracle.equal_attribution expected got)

let test_oracle_new_bugs () =
  check_attr (Oracle.Bug K.Bugs.B1_ptype_leak)
    (sig_ "socket" [ "AF_PACKET" ])
    (sig_ "read" [ "/proc/net/ptype" ]);
  check_attr (Oracle.Bug K.Bugs.B2_flowlabel_send)
    (sig_ "flowlabel_request" [ "AF_INET6" ])
    (sig_ "send" [ "AF_INET6" ]);
  check_attr (Oracle.Bug K.Bugs.B3_rds_bind)
    (sig_ "bind" [ "AF_RDS" ])
    (sig_ "bind" [ "AF_RDS" ]);
  check_attr (Oracle.Bug K.Bugs.B4_flowlabel_connect)
    (sig_ "flowlabel_request" [ "AF_INET6" ])
    (sig_ "connect" [ "AF_INET6" ]);
  check_attr (Oracle.Bug K.Bugs.B5_sockstat_tcp)
    (sig_ "socket" [ "AF_INET_TCP" ])
    (sig_ "read" [ "/proc/net/sockstat" ]);
  check_attr (Oracle.Bug K.Bugs.B6_cookie)
    (sig_ "get_cookie" [ "AF_PACKET" ])
    (sig_ "get_cookie" [ "AF_INET_TCP" ]);
  check_attr (Oracle.Bug K.Bugs.B7_sctp_assoc)
    (sig_ "sctp_assoc" [ "AF_SCTP" ])
    (sig_ "sctp_assoc" [ "AF_SCTP" ]);
  check_attr (Oracle.Bug K.Bugs.B8_protomem_sockstat)
    (sig_ "alloc_protomem" [ "AF_INET_UDP" ])
    (sig_ "read" [ "/proc/net/sockstat" ]);
  check_attr (Oracle.Bug K.Bugs.B9_protomem_protocols)
    (sig_ "alloc_protomem" [ "AF_INET_UDP" ])
    (sig_ "read" [ "/proc/net/protocols" ])

let test_oracle_known_bugs () =
  check_attr (Oracle.Bug K.Bugs.KA_prio_user)
    (sig_ "setpriority" [ "PRIO_USER" ])
    (sig_ "getpriority" [ "PRIO_USER" ]);
  check_attr (Oracle.Bug K.Bugs.KB_uevent)
    (sig_ "netdev_create" [])
    (sig_ "uevent_recv" [ "AF_NETLINK_UEVENT" ]);
  check_attr (Oracle.Bug K.Bugs.KC_ipvs)
    (sig_ "ipvs_add_service" [])
    (sig_ "read" [ "/proc/net/ip_vs" ]);
  check_attr (Oracle.Bug K.Bugs.KD_conntrack_max)
    (sig_ "sysctl_write" [ "net/nf_conntrack_max" ])
    (sig_ "sysctl_read" [ "net/nf_conntrack_max" ]);
  check_attr (Oracle.Bug K.Bugs.KE_iouring_mount)
    (sig_ "creat" [ "/tmp/kit0" ])
    (sig_ "io_uring_read" [ "/tmp/kit0" ])

let test_oracle_false_positives () =
  check_attr (Oracle.False_positive "minor-dev")
    (sig_ "open" [ "/proc/net/ptype" ])
    (sig_ "fstat" [ "/proc/net/sockstat" ]);
  check_attr (Oracle.False_positive "crypto")
    (sig_ "af_alg_bind" [ "AF_ALG" ])
    (sig_ "read" [ "/proc/crypto" ])

let test_oracle_under_investigation () =
  check_attr Oracle.Under_investigation
    (sig_ "socket" [ "AF_PACKET" ])
    (sig_ "read" [ "/proc/slabinfo" ]);
  check_attr Oracle.Under_investigation
    (sig_ "getpid" [])
    (sig_ "gethostname" [])

(* --- Known bugs -------------------------------------------------------------- *)

let test_known_bugs_reproduce_5_of_7 () =
  let outcomes = Known_bugs.reproduce_all () in
  check_int "paper reproduces 5/7" 5 (Known_bugs.detected_count outcomes);
  check_bool "every case as expected" true
    (List.for_all (fun o -> o.Known_bugs.as_expected) outcomes)

let test_known_bugs_case_list () =
  check_int "seven documented cases" 7 (List.length Known_bugs.cases);
  let labels = List.map (fun c -> c.Known_bugs.label) Known_bugs.cases in
  check (Alcotest.list Alcotest.string) "labels"
    [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ] labels

let test_known_bug_kernel_versions () =
  List.iter
    (fun case ->
      check Alcotest.string
        (Printf.sprintf "case %s version" case.Known_bugs.label)
        (K.Bugs.known_bug_version case.Known_bugs.bug)
        case.Known_bugs.kernel)
    Known_bugs.cases

(* --- Campaign ------------------------------------------------------------------ *)

(* One shared small campaign for the expensive end-to-end assertions. *)
let small_campaign =
  lazy
    (Campaign.run
       { Campaign.default_options with Campaign.corpus_size = 160 })

let test_campaign_finds_all_new_bugs () =
  let c = Lazy.force small_campaign in
  let found = Oracle.new_bugs_found c.Campaign.keyed in
  check_int "9/9 bugs" 9 (List.length found)

let test_campaign_funnel_shape () =
  let c = Lazy.force small_campaign in
  let f = c.Campaign.funnel in
  check_bool "executed >= initial" true (f.Filter.executed >= f.Filter.initial);
  check_bool "initial > after nondet" true
    (f.Filter.initial > f.Filter.after_nondet);
  check_bool "after nondet >= after resource" true
    (f.Filter.after_nondet >= f.Filter.after_resource);
  check_int "reports = funnel tail" f.Filter.after_resource
    (List.length c.Campaign.reports)

let test_campaign_aggregation_shrinks () =
  let c = Lazy.force small_campaign in
  check_bool "AGG-RS fewer than reports" true
    (List.length c.Campaign.agg_rs <= List.length c.Campaign.reports);
  check_bool "AGG-R fewer or equal to AGG-RS" true
    (List.length c.Campaign.agg_r <= List.length c.Campaign.agg_rs);
  check_bool "groups partition the reports" true
    (List.fold_left
       (fun acc (g : Aggregate.group) -> acc + List.length g.Aggregate.members)
       0 c.Campaign.agg_rs
    = List.length c.Campaign.keyed)

let test_campaign_deterministic () =
  let opts = { Campaign.default_options with Campaign.corpus_size = 64 } in
  let a = Campaign.run opts in
  let b = Campaign.run opts in
  check_int "same cluster count" a.Campaign.generation.Cluster.clusters
    b.Campaign.generation.Cluster.clusters;
  check_int "same report count"
    (List.length a.Campaign.reports)
    (List.length b.Campaign.reports)

let test_campaign_fixed_kernel_clean () =
  (* On the fully fixed kernel the campaign must report no genuine bug;
     only the unprotected-by-design channels can remain. *)
  let c =
    Campaign.run
      { Campaign.default_options with
        Campaign.corpus_size = 120;
        config = K.Config.fixed () }
  in
  let found = Oracle.new_bugs_found c.Campaign.keyed in
  check_int "no bugs on fixed kernel" 0 (List.length found)

let test_campaign_rand_weaker () =
  let prepared =
    Campaign.prepare { Campaign.default_options with Campaign.corpus_size = 160 }
  in
  let ia = Campaign.execute_prepared ~strategy:Cluster.Df_ia prepared in
  let rand =
    Campaign.execute_prepared
      ~strategy:(Cluster.Rand ia.Campaign.generation.Cluster.clusters)
      prepared
  in
  let n_ia = List.length (Oracle.new_bugs_found ia.Campaign.keyed) in
  let n_rand = List.length (Oracle.new_bugs_found rand.Campaign.keyed) in
  check_bool "equal-budget RAND finds fewer bugs" true (n_rand < n_ia)

(* --- Streaming campaigns ---------------------------------------------------------- *)

let test_stream_stats_shape () =
  let opts = { Campaign.default_options with Campaign.corpus_size = 48 } in
  let s = Campaign.stream opts in
  let t = Campaign.stream_result s in
  let stats = Campaign.stream_stats s in
  check_int "every program folded" 48 stats.Campaign.fed;
  check_int "one live cluster per cluster"
    t.Campaign.generation.Cluster.clusters stats.Campaign.live_clusters;
  check_bool "executions cover every cluster plus re-runs" true
    (stats.Campaign.executed_cases
    >= t.Campaign.generation.Cluster.clusters);
  check_bool "first report observed" true
    (Option.is_some stats.Campaign.first_report_s
    = (t.Campaign.reports <> []));
  check_bool "peak feed working set bounded by df_total" true
    (stats.Campaign.peak_feed_pairs <= t.Campaign.df_total)

let test_stream_result_idempotent () =
  let opts = { Campaign.default_options with Campaign.corpus_size = 32 } in
  let s = Campaign.stream opts in
  let a = Campaign.stream_result s in
  let execs = (Campaign.stream_stats s).Campaign.executed_cases in
  let b = Campaign.stream_result s in
  check_int "no re-execution on re-assembly" execs
    (Campaign.stream_stats s).Campaign.executed_cases;
  check_int "same reports" (List.length a.Campaign.reports)
    (List.length b.Campaign.reports);
  check_int "same df_total" a.Campaign.df_total b.Campaign.df_total

let test_extend_rejects_negative () =
  let opts = { Campaign.default_options with Campaign.corpus_size = 16 } in
  let s = Campaign.stream opts in
  Alcotest.check_raises "negative growth rejected"
    (Invalid_argument "Campaign.extend: add must be non-negative") (fun () ->
      ignore (Campaign.extend s ~add:(-1)))

let test_checkpoint_reports_accessor () =
  let prepared =
    Campaign.prepare { Campaign.default_options with Campaign.corpus_size = 48 }
  in
  let rec drive resume acc =
    match Campaign.execute_partial ?resume ~budget:16 prepared with
    | `Paused ck ->
      let n = Campaign.checkpoint_reports ck in
      check_bool "report count monotone across chunks" true (n >= acc);
      drive (Some ck) n
    | `Done t -> (acc, t)
  in
  let last_seen, t = drive None 0 in
  check_bool "final count caps the checkpoints" true
    (last_seen <= List.length t.Campaign.reports)

(* --- Tables ----------------------------------------------------------------------- *)

let test_table2_rows () =
  check_int "nine rows" 9 (List.length Tables.table2_rows);
  let numbers = List.map (fun r -> r.Tables.number) Tables.table2_rows in
  check (Alcotest.list Alcotest.int) "numbered 1..9"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ] numbers

let test_table2_marks_found () =
  let c = Lazy.force small_campaign in
  let found, rendered = Tables.table2 c in
  check_int "all found" 9 (List.length found);
  check_bool "no missed rows" false
    (let rec contains_missed i =
       i >= 0
       && (String.length rendered - i >= 6
           && String.equal (String.sub rendered i 6) "missed"
          || contains_missed (i - 1))
     in
     contains_missed (String.length rendered - 6))

let test_table6_totals () =
  let c = Lazy.force small_campaign in
  let data, _ = Tables.table6 c in
  let reports_total = List.fold_left (fun acc d -> acc + d.Tables.reports) 0 data in
  check_int "columns partition all reports" (List.length c.Campaign.keyed)
    reports_total

let test_table5_renders () =
  let c = Lazy.force small_campaign in
  check_bool "mentions executed" true
    (String.length (Tables.table5 c) > 0)

let test_performance_renders () =
  let c = Lazy.force small_campaign in
  check_bool "non-empty" true (String.length (Tables.performance c) > 0)

let suite =
  [
    Alcotest.test_case "oracle: new bugs" `Quick test_oracle_new_bugs;
    Alcotest.test_case "oracle: known bugs" `Quick test_oracle_known_bugs;
    Alcotest.test_case "oracle: false positives" `Quick
      test_oracle_false_positives;
    Alcotest.test_case "oracle: under investigation" `Quick
      test_oracle_under_investigation;
    Alcotest.test_case "known bugs: 5/7 reproduced" `Quick
      test_known_bugs_reproduce_5_of_7;
    Alcotest.test_case "known bugs: case list" `Quick test_known_bugs_case_list;
    Alcotest.test_case "known bugs: kernel versions consistent" `Quick
      test_known_bug_kernel_versions;
    Alcotest.test_case "campaign: finds all nine bugs" `Slow
      test_campaign_finds_all_new_bugs;
    Alcotest.test_case "campaign: funnel shape" `Slow test_campaign_funnel_shape;
    Alcotest.test_case "campaign: aggregation shrinks" `Slow
      test_campaign_aggregation_shrinks;
    Alcotest.test_case "campaign: deterministic" `Slow
      test_campaign_deterministic;
    Alcotest.test_case "campaign: fixed kernel reports no bugs" `Slow
      test_campaign_fixed_kernel_clean;
    Alcotest.test_case "campaign: equal-budget RAND weaker" `Slow
      test_campaign_rand_weaker;
    Alcotest.test_case "stream: stats shape" `Slow test_stream_stats_shape;
    Alcotest.test_case "stream: assembly idempotent" `Slow
      test_stream_result_idempotent;
    Alcotest.test_case "stream: negative growth rejected" `Quick
      test_extend_rejects_negative;
    Alcotest.test_case "checkpoint: report count accessor" `Slow
      test_checkpoint_reports_accessor;
    Alcotest.test_case "tables: table 2 static rows" `Quick test_table2_rows;
    Alcotest.test_case "tables: table 2 marks all found" `Slow
      test_table2_marks_found;
    Alcotest.test_case "tables: table 6 totals" `Slow test_table6_totals;
    Alcotest.test_case "tables: table 5 renders" `Slow test_table5_renders;
    Alcotest.test_case "tables: performance renders" `Slow
      test_performance_renders;
  ]
