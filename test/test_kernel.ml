(* Tests for the model kernel: tracing infrastructure, process and
   socket tables, every bug-bearing subsystem (buggy vs fixed code
   paths), the syscall layer and the interpreter. *)

module Sysno = Kit_abi.Sysno
module Value = Kit_abi.Value
module Consts = Kit_abi.Consts
module K = Kit_kernel

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let buggy () = K.State.boot (K.Config.v5_13 ())
let fixed () = K.State.boot (K.Config.fixed ())

(* Boot a kernel with two containers; returns (kernel, sender pid,
   receiver pid). *)
let with_containers ?(config = K.Config.v5_13 ()) () =
  let k = K.State.boot config in
  let s = K.State.spawn_container k in
  let r = K.State.spawn_container k in
  (k, s, r)

let run k pid text = K.Interp.run k ~pid (Kit_abi.Syzlang.parse text)

let last_ret results =
  match List.rev results with
  | r :: _ -> r.K.Interp.ret
  | [] -> Alcotest.fail "no results"

let last_str results =
  match (last_ret results).K.Sysret.out with
  | K.Sysret.P_str s -> s
  | K.Sysret.P_none | K.Sysret.P_lines _ | K.Sysret.P_stat _ ->
    Alcotest.fail "expected string payload"

let last_lines results =
  match (last_ret results).K.Sysret.out with
  | K.Sysret.P_lines ls -> ls
  | K.Sysret.P_none | K.Sysret.P_str _ | K.Sysret.P_stat _ ->
    Alcotest.fail "expected lines payload"

let last_stat results =
  match (last_ret results).K.Sysret.out with
  | K.Sysret.P_stat st -> st
  | K.Sysret.P_none | K.Sysret.P_str _ | K.Sysret.P_lines _ ->
    Alcotest.fail "expected stat payload"

let errno_of results =
  match (last_ret results).K.Sysret.err with
  | Some e -> K.Errno.to_string e
  | None -> "0"

(* --- heap / var --------------------------------------------------------- *)

let test_var_snapshot_roundtrip () =
  let heap = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v1 = K.Var.alloc heap ~name:"a" 1 in
  let v2 = K.Var.alloc heap ~name:"b" "x" in
  let snap = K.Heap.snapshot heap in
  K.Var.write ctx v1 42;
  K.Var.write ctx v2 "y";
  K.Heap.restore heap snap;
  check_int "int restored" 1 (K.Var.peek v1);
  check_string "string restored" "x" (K.Var.peek v2)

let test_var_addresses_unique () =
  let heap = K.Heap.create () in
  let v1 = K.Var.alloc heap ~name:"a" 0 in
  let v2 = K.Var.alloc heap ~name:"b" 0 in
  check_bool "distinct" true (K.Var.addr v1 <> K.Var.addr v2)

(* Regression: restore used to ignore its heap argument entirely, so a
   snapshot silently spliced another kernel's state into this one. *)
let test_restore_rejects_foreign_snapshot () =
  let h1 = K.Heap.create () in
  let h2 = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v1 = K.Var.alloc h1 ~name:"a" 1 in
  ignore (K.Var.alloc h2 ~name:"a" 1 : int K.Var.t);
  let snap2 = K.Heap.snapshot h2 in
  K.Var.write ctx v1 42;
  Alcotest.check_raises "cross-heap restore rejected"
    (Invalid_argument "Heap.restore: snapshot belongs to a different heap")
    (fun () -> K.Heap.restore h1 snap2);
  check_int "h1 untouched by the rejected restore" 42 (K.Var.peek v1)

(* Incremental restore bookkeeping: only dirty cells are replayed when
   re-restoring the same snapshot, and a dirty heap always converges to
   the snapshot contents either way. *)
let test_restore_incremental_stats () =
  let heap = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v1 = K.Var.alloc heap ~name:"a" 1 in
  let v2 = K.Var.alloc heap ~name:"b" 2 in
  let v3 = K.Var.alloc heap ~name:"c" 3 in
  let snap = K.Heap.snapshot heap in
  K.Var.write ctx v2 20;
  K.Heap.restore heap snap;
  let replayed, total = K.Heap.restore_stats heap in
  check_int "one dirty cell replayed" 1 replayed;
  check_int "a full restore would replay all three" 3 total;
  check_int "b restored" 2 (K.Var.peek v2);
  (* clean heap: re-restoring the same snapshot replays nothing *)
  K.Heap.restore heap snap;
  let replayed, _ = K.Heap.restore_stats heap in
  check_int "clean re-restore replays nothing" 1 replayed;
  (* ~full:true replays everything regardless of the dirty set *)
  K.Var.write ctx v1 10;
  K.Heap.restore ~full:true heap snap;
  let replayed, total = K.Heap.restore_stats heap in
  check_int "full restore replays all cells" 4 replayed;
  check_int "running full-cost total" 9 total;
  check_int "a restored" 1 (K.Var.peek v1);
  check_int "c untouched throughout" 3 (K.Var.peek v3)

let collect_events ctx f =
  let events = ref [] in
  K.Ctx.with_sink ctx (fun e -> events := e :: !events) f;
  List.rev !events

let test_var_traced_access () =
  let heap = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v = K.Var.alloc heap ~name:"a" 0 in
  let events =
    collect_events ctx (fun () ->
        ignore (K.Var.read ctx v);
        K.Var.write ctx v 1)
  in
  let mems =
    List.filter_map
      (function K.Kevent.Mem m -> Some m.K.Kevent.rw | _ -> None)
      events
  in
  check_bool "read then write" true (mems = [ K.Kevent.Read; K.Kevent.Write ])

let test_var_uninstrumented_silent () =
  let heap = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v = K.Var.alloc heap ~name:"a" ~instrumented:false 0 in
  let events = collect_events ctx (fun () -> K.Var.write ctx v 9) in
  check_int "no events" 0 (List.length events)

let test_var_irq_filtered () =
  let heap = K.Heap.create () in
  let ctx = K.Ctx.create () in
  let v = K.Var.alloc heap ~name:"a" 0 in
  let events =
    collect_events ctx (fun () ->
        K.Ctx.with_irq ctx (fun () -> K.Var.write ctx v 9))
  in
  check_int "irq accesses hidden" 0 (List.length events)

(* --- kfun --------------------------------------------------------------- *)

let test_kfun_stack_balance () =
  let ctx = K.Ctx.create () in
  let f1 = K.Kfun.register "test_f1" in
  let f2 = K.Kfun.register "test_f2" in
  K.Kfun.call ctx f1 (fun () ->
      check_int "inner" f1 (K.Ctx.innermost ctx);
      K.Kfun.call ctx f2 (fun () ->
          check_int "nested" f2 (K.Ctx.innermost ctx);
          check_int "caller" f1 (K.Ctx.caller ctx)));
  check_int "balanced" 0 (List.length ctx.K.Ctx.stack)

let test_kfun_stack_on_exception () =
  let ctx = K.Ctx.create () in
  let f1 = K.Kfun.register "test_exn" in
  (try K.Kfun.call ctx f1 (fun () -> failwith "boom") with Failure _ -> ());
  check_int "stack restored after exception" 0 (List.length ctx.K.Ctx.stack)

let test_kfun_register_idempotent () =
  check_int "same id" (K.Kfun.register "test_same") (K.Kfun.register "test_same")

(* --- clock -------------------------------------------------------------- *)

let test_clock_advances () =
  let k = buggy () in
  let t0 = K.State.now k in
  K.Clock.tick k.K.State.ctx k.K.State.clock;
  check_bool "monotonic" true (K.State.now k > t0)

let test_clock_base_shift () =
  let k = buggy () in
  K.Clock.set_base k.K.State.clock 123_456;
  check_int "based" 123_456 (K.State.now k)

(* --- namespaces / processes --------------------------------------------- *)

let test_namespace_put_get () =
  let ns = K.Namespace.put K.Namespace.initial K.Namespace.Net 5 in
  check_int "net set" 5 (K.Namespace.get ns K.Namespace.Net);
  check_int "pid untouched" 0 (K.Namespace.get ns K.Namespace.Pid)

let test_namespace_flags_distinct () =
  let flags = List.map K.Namespace.kind_flag K.Namespace.all_kinds in
  check_int "distinct bits" (List.length flags)
    (List.length (List.sort_uniq Int.compare flags))

let test_containers_get_fresh_namespaces () =
  let k, s, r = with_containers () in
  let ps = K.Proctab.find_exn k.K.State.ctx k.K.State.procs s in
  let pr = K.Proctab.find_exn k.K.State.ctx k.K.State.procs r in
  check_bool "different netns" true
    (ps.K.Proctab.ns.K.Namespace.net <> pr.K.Proctab.ns.K.Namespace.net);
  check_bool "not initial" true (ps.K.Proctab.ns.K.Namespace.net <> 0)

let test_host_container_keeps_initial_ns () =
  let k = buggy () in
  let h = K.State.spawn_container ~host:true k in
  let ph = K.Proctab.find_exn k.K.State.ctx k.K.State.procs h in
  check_int "initial mount ns" 0 ph.K.Proctab.ns.K.Namespace.mount

let test_unshare_selective () =
  let k = buggy () in
  let pid = K.State.spawn_container ~host:true k in
  let results = run k pid "r0 = unshare(16)" (* CLONE_NEWNET *) in
  check_int "ok" 0 (last_ret results).K.Sysret.ret;
  let p = K.Proctab.find_exn k.K.State.ctx k.K.State.procs pid in
  check_bool "net unshared" true (p.K.Proctab.ns.K.Namespace.net <> 0);
  check_int "uts kept" 0 p.K.Proctab.ns.K.Namespace.uts

let test_fd_numbers_per_process () =
  let k, s, r = with_containers () in
  let rs = run k s "r0 = socket(1)" in
  let rr = run k r "r0 = socket(1)" in
  check_int "same fd number" (last_ret rs).K.Sysret.ret
    (last_ret rr).K.Sysret.ret

(* --- subsystem: packet / ptype (bug #1) ---------------------------------- *)

let read_proc k pid path =
  last_str (run k pid (Printf.sprintf "r0 = open(%S)\nr1 = read(r0)" path))

let test_ptype_leak_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(3)" in
  let content = read_proc k r "/proc/net/ptype" in
  check_bool "foreign socket leaked" true
    (String.length content > String.length "Type Device      Function")

let test_ptype_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(3)" in
  let content = read_proc k r "/proc/net/ptype" in
  check_string "header only" "Type Device      Function" content

let test_ptype_own_socket_visible () =
  let k, _, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k r "r0 = socket(3)" in
  let content = read_proc k r "/proc/net/ptype" in
  check_bool "own socket shown" true
    (String.length content > String.length "Type Device      Function")

let test_ptype_close_unregisters () =
  let k, _, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k r "r0 = socket(3)\nr1 = close(r0)" in
  let content = read_proc k r "/proc/net/ptype" in
  check_string "unregistered" "Type Device      Function" content

(* --- subsystem: flow labels (bugs #2/#4) --------------------------------- *)

let test_flowlabel_dos_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)" in
  let results = run k r "r0 = socket(9)\nr1 = send(r0, 8, 2)" in
  check_string "send rejected" "ENOENT" (errno_of results)

let test_flowlabel_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)" in
  let results = run k r "r0 = socket(9)\nr1 = send(r0, 8, 2)" in
  check_int "send ok" 8 (last_ret results).K.Sysret.ret

let test_flowlabel_connect_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)" in
  let results = run k r "r0 = socket(9)\nr1 = connect(r0, 1000, 2)" in
  check_string "connect rejected" "ENOENT" (errno_of results)

let test_flowlabel_registered_label_works () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)" in
  let results =
    run k r "r0 = socket(9)\nr1 = flowlabel_request(r0, 2, 1)\nr2 = send(r0, 8, 2)"
  in
  check_int "self-registered label ok" 8 (last_ret results).K.Sysret.ret

let test_flowlabel_no_label_always_ok () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)" in
  let results = run k r "r0 = socket(9)\nr1 = send(r0, 8, 0)" in
  check_int "label 0 ok" 8 (last_ret results).K.Sysret.ret

let test_flowlabel_duplicate_registration () =
  let k, _, r = with_containers () in
  let results =
    run k r
      "r0 = socket(9)\nr1 = flowlabel_request(r0, 3, 1)\nr2 = flowlabel_request(r0, 3, 1)"
  in
  check_string "duplicate rejected" "EEXIST" (errno_of results)

(* --- subsystem: RDS (bug #3) --------------------------------------------- *)

let test_rds_bind_conflict_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(4)\nr1 = bind(r0, 1003)" in
  let results = run k r "r0 = socket(4)\nr1 = bind(r0, 1003)" in
  check_string "cross-container conflict" "EADDRINUSE" (errno_of results)

let test_rds_bind_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(4)\nr1 = bind(r0, 1003)" in
  let results = run k r "r0 = socket(4)\nr1 = bind(r0, 1003)" in
  check_int "bind ok" 0 (last_ret results).K.Sysret.ret

let test_rds_bind_same_ns_conflict () =
  let k, _, r = with_containers ~config:(K.Config.fixed ()) () in
  let results =
    run k r "r0 = socket(4)\nr1 = bind(r0, 1003)\nr2 = socket(4)\nr3 = bind(r2, 1003)"
  in
  check_string "same-ns conflict stays" "EADDRINUSE" (errno_of results)

(* --- subsystem: SCTP / cookies (bugs #6/#7) ------------------------------- *)

let test_sctp_assoc_shifts_buggy () =
  let k, s, r = with_containers () in
  let before = last_ret (run k r "r0 = socket(5)\nr1 = sctp_assoc(r0)") in
  let _ = run k s "r0 = socket(5)\nr1 = sctp_assoc(r0)" in
  let after = last_ret (run k r "r0 = socket(5)\nr1 = sctp_assoc(r0)") in
  check_bool "ids shifted by sender" true
    (after.K.Sysret.ret - before.K.Sysret.ret > 1)

let test_sctp_assoc_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(5)\nr1 = sctp_assoc(r0)" in
  let first = last_ret (run k r "r0 = socket(5)\nr1 = sctp_assoc(r0)") in
  check_int "receiver space starts at 1" 1 first.K.Sysret.ret

let test_cookie_stable_per_socket () =
  let k, _, r = with_containers () in
  let results =
    run k r "r0 = socket(1)\nr1 = get_cookie(r0)\nr2 = get_cookie(r0)"
  in
  match results with
  | [ _; c1; c2 ] ->
    check_int "idempotent" c1.K.Interp.ret.K.Sysret.ret
      c2.K.Interp.ret.K.Sysret.ret
  | _ -> Alcotest.fail "expected three results"

let test_cookie_global_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(1)\nr1 = get_cookie(r0)" in
  let c = last_ret (run k r "r0 = socket(1)\nr1 = get_cookie(r0)") in
  check_int "sender consumed cookie 1" 2 c.K.Sysret.ret

let test_cookie_perns_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(1)\nr1 = get_cookie(r0)" in
  let pr = K.Proctab.find_exn k.K.State.ctx k.K.State.procs r in
  let c = last_ret (run k r "r0 = socket(1)\nr1 = get_cookie(r0)") in
  check_int "per-ns cookie space"
    ((pr.K.Proctab.ns.K.Namespace.net * 1_000_000) + 1)
    c.K.Sysret.ret

(* --- subsystem: protomem / sockstat (bugs #5/#8/#9) ----------------------- *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_sockstat_counts_foreign_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(1)" in
  let content = read_proc k r "/proc/net/sockstat" in
  check_bool "foreign TCP socket counted" true
    (contains ~needle:"TCP: inuse 1" content)

let test_sockstat_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(1)" in
  let content = read_proc k r "/proc/net/sockstat" in
  check_bool "own count zero" true (contains ~needle:"TCP: inuse 0" content)

let test_protomem_leaks_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(2)\nr1 = alloc_protomem(r0, 160)" in
  let content = read_proc k r "/proc/net/sockstat" in
  check_bool "foreign memory visible" true (contains ~needle:"mem 10" content)

let test_protocols_leaks_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(2)\nr1 = alloc_protomem(r0, 160)" in
  let content = read_proc k r "/proc/net/protocols" in
  check_bool "foreign memory visible" true (contains ~needle:"10" content)

let test_protocols_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = socket(2)\nr1 = alloc_protomem(r0, 160)" in
  let content = read_proc k r "/proc/net/protocols" in
  check_bool "no foreign memory" false (contains ~needle:"10" content)

(* --- subsystem: conntrack (bugs D/F) -------------------------------------- *)

let test_conntrack_max_global_buggy () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = sysctl_write(\"net/nf_conntrack_max\", 9)" in
  let v = last_ret (run k r "r0 = sysctl_read(\"net/nf_conntrack_max\")") in
  check_int "leaked write" 9 v.K.Sysret.ret

let test_conntrack_max_perns_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = sysctl_write(\"net/nf_conntrack_max\", 9)" in
  let v = last_ret (run k r "r0 = sysctl_read(\"net/nf_conntrack_max\")") in
  check_int "default kept" 65536 v.K.Sysret.ret

let test_conntrack_dump_nondeterministic () =
  (* The dump must differ across clock bases even with no sender — the
     property that makes known bug F undetectable. *)
  let config = K.Config.for_known_bug K.Bugs.KF_conntrack_dump in
  let k, _, r = with_containers ~config () in
  let snap = K.State.snapshot k in
  K.Clock.set_base k.K.State.clock 1_000_000;
  let a = read_proc k r "/proc/net/nf_conntrack" in
  K.State.restore k snap;
  K.Clock.set_base k.K.State.clock 1_005_923;
  let b = read_proc k r "/proc/net/nf_conntrack" in
  check_bool "time-dependent content" false (String.equal a b)

let test_somaxconn_global_by_design () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = sysctl_write(\"net/somaxconn\", 7)" in
  let v = last_ret (run k r "r0 = sysctl_read(\"net/somaxconn\")") in
  check_int "global sysctl" 7 v.K.Sysret.ret

(* --- subsystem: uevents (bug B) ------------------------------------------ *)

let test_uevent_broadcast_buggy () =
  let config = K.Config.for_known_bug K.Bugs.KB_uevent in
  let k, s, r = with_containers ~config () in
  let _ = run k s "r0 = netdev_create(\"veth0\")" in
  let events = last_lines (run k r "r0 = socket(8)\nr1 = uevent_recv(r0)") in
  check_int "foreign queue uevents received" 2 (List.length events)

let test_uevent_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = netdev_create(\"veth0\")" in
  let events = last_lines (run k r "r0 = socket(8)\nr1 = uevent_recv(r0)") in
  check_int "no foreign uevents" 0 (List.length events)

let test_uevent_own_events_delivered () =
  let k, _, r = with_containers ~config:(K.Config.fixed ()) () in
  let events =
    last_lines
      (run k r "r0 = socket(8)\nr1 = netdev_create(\"veth1\")\nr2 = uevent_recv(r0)")
  in
  check_int "own uevents" 2 (List.length events)

let test_netdev_duplicate_name () =
  let k, _, r = with_containers () in
  let results = run k r "r0 = netdev_create(\"v0\")\nr1 = netdev_create(\"v0\")" in
  check_string "duplicate rejected" "EEXIST" (errno_of results)

(* --- subsystem: ipvs (bug C) ---------------------------------------------- *)

let test_ipvs_leak_buggy () =
  let config = K.Config.for_known_bug K.Bugs.KC_ipvs in
  let k, s, r = with_containers ~config () in
  let _ = run k s "r0 = ipvs_add_service(1080)" in
  let content = read_proc k r "/proc/net/ip_vs" in
  check_bool "foreign service listed" true (contains ~needle:"0438" content)

let test_ipvs_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = ipvs_add_service(1080)" in
  let content = read_proc k r "/proc/net/ip_vs" in
  check_bool "no foreign service" false (contains ~needle:"0438" content)

(* --- subsystem: priorities (bug A) ----------------------------------------- *)

let test_prio_user_crosses_ns_buggy () =
  let config = K.Config.for_known_bug K.Bugs.KA_prio_user in
  let k, s, r = with_containers ~config () in
  let _ = run k s "r0 = setpriority(2, 1000, 5)" in
  let v = last_ret (run k r "r0 = getpriority(2, 1000)") in
  check_int "foreign nice visible" 15 v.K.Sysret.ret

let test_prio_user_isolated_fixed () =
  let k, s, r = with_containers ~config:(K.Config.fixed ()) () in
  let _ = run k s "r0 = setpriority(2, 1000, 5)" in
  let v = last_ret (run k r "r0 = getpriority(2, 1000)") in
  check_int "default nice" 20 v.K.Sysret.ret

let test_prio_process_isolated () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = setpriority(0, 0, 5)" in
  let v = last_ret (run k r "r0 = getpriority(0, 0)") in
  check_int "per-process" 20 v.K.Sysret.ret

(* --- subsystems: uts / ipc (negative controls) ----------------------------- *)

let test_uts_isolated () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = sethostname(\"attacker\")" in
  let name = last_str (run k r "r0 = gethostname()") in
  check_string "hostname isolated" "(none)" name

let test_uts_own_hostname () =
  let k, _, r = with_containers () in
  let name = last_str (run k r "r0 = sethostname(\"mine\")\nr1 = gethostname()") in
  check_string "own hostname" "mine" name

let test_ipc_isolated () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = msgget(101)\nr1 = msgsnd(r0, \"secret\")" in
  let results = run k r "r0 = msgget(101)\nr1 = msgrcv(r0)" in
  check_string "queue empty across ns" "ENOENT" (errno_of results)

let test_ipc_same_ns_delivery () =
  let k, _, r = with_containers () in
  let msg =
    last_str (run k r "r0 = msgget(101)\nr1 = msgsnd(r0, \"hi\")\nr2 = msgrcv(r0)")
  in
  check_string "delivered" "hi" msg

let test_ipc_qids_per_ns () =
  let k, s, r = with_containers () in
  let qs = last_ret (run k s "r0 = msgget(101)") in
  let qr = last_ret (run k r "r0 = msgget(101)") in
  check_bool "distinct queues" true (qs.K.Sysret.ret <> qr.K.Sysret.ret)

(* --- subsystem: mounts / io_uring (bug E) ----------------------------------- *)

let test_iouring_escapes_buggy () =
  let config = K.Config.for_known_bug K.Bugs.KE_iouring_mount in
  let k = K.State.boot config in
  let host = K.State.spawn_container ~host:true k in
  let r = K.State.spawn_container k in
  let _ = run k host "r0 = creat(\"/tmp/kit0\")" in
  let content = last_str (run k r "r0 = io_uring_read(\"/tmp/kit0\")") in
  check_string "host file visible" "data:/tmp/kit0" content

let test_iouring_confined_fixed () =
  let k = K.State.boot (K.Config.fixed ()) in
  let host = K.State.spawn_container ~host:true k in
  let r = K.State.spawn_container k in
  let _ = run k host "r0 = creat(\"/tmp/kit0\")" in
  let results = run k r "r0 = io_uring_read(\"/tmp/kit0\")" in
  check_string "confined to own mount ns" "ENOENT" (errno_of results)

let test_open_respects_mount_ns () =
  let config = K.Config.for_known_bug K.Bugs.KE_iouring_mount in
  let k = K.State.boot config in
  let host = K.State.spawn_container ~host:true k in
  let r = K.State.spawn_container k in
  let _ = run k host "r0 = creat(\"/tmp/kit0\")" in
  let results = run k r "r0 = open(\"/tmp/kit0\")" in
  check_string "regular open is confined even on buggy kernel" "ENOENT"
    (errno_of results)

let test_tmp_file_roundtrip () =
  let k, _, r = with_containers () in
  let content =
    last_str (run k r "r0 = creat(\"/tmp/kit1\")\nr1 = open(\"/tmp/kit1\")\nr2 = read(r1)")
  in
  check_string "content" "data:/tmp/kit1" content

(* --- subsystem: tokens / sock_diag (bug G) ----------------------------------- *)

let test_token_ids_salted () =
  let k1 = K.State.boot (K.Config.make ~boot_seed:1 "5.13") in
  let k2 = K.State.boot (K.Config.make ~boot_seed:2 "5.13") in
  let p1 = K.State.spawn_container k1 in
  let p2 = K.State.spawn_container k2 in
  let t1 = last_ret (run k1 p1 "r0 = token_create()") in
  let t2 = last_ret (run k2 p2 "r0 = token_create()") in
  check_bool "per-boot randomised" true (t1.K.Sysret.ret <> t2.K.Sysret.ret);
  check_bool "far from small constants" true (t1.K.Sysret.ret > 0x1000)

let test_sock_diag_constants_miss () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(6)" in
  let results = run k r "r0 = sock_diag(3)" in
  check_string "small ids never hit" "ENOENT" (errno_of results)

(* --- procfs / devid / crypto / slab ------------------------------------------ *)

let test_procfs_fstat_shape () =
  let k, _, r = with_containers () in
  let st = last_stat (run k r "r0 = open(\"/proc/net/sockstat\")\nr1 = fstat(r0)") in
  check_int "procfs size 0" 0 st.K.Sysret.size;
  check_bool "mtime is time of stat" true (st.K.Sysret.mtime > 0)

let test_devid_minor_global () =
  let k, s, r = with_containers () in
  let snap = K.State.snapshot k in
  let st_solo =
    last_stat (run k r "r0 = open(\"/proc/net/sockstat\")\nr1 = fstat(r0)")
  in
  K.State.restore k snap;
  let _ = run k s "r0 = open(\"/proc/net/ptype\")" in
  let st_after =
    last_stat (run k r "r0 = open(\"/proc/net/sockstat\")\nr1 = fstat(r0)")
  in
  check_bool "sender shifted the global minor counter" true
    (st_solo.K.Sysret.dev_minor <> st_after.K.Sysret.dev_minor)

let test_crypto_registry_global () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(7)\nr1 = af_alg_bind(r0, \"cbc\")" in
  let content = read_proc k r "/proc/crypto" in
  check_bool "global registry by design" true (contains ~needle:"cbc" content)

let test_crypto_duplicate_registration () =
  let k, s, r = with_containers () in
  let _ = run k s "r0 = socket(7)\nr1 = af_alg_bind(r0, \"cbc\")" in
  let results = run k r "r0 = socket(7)\nr1 = af_alg_bind(r0, \"cbc\")" in
  check_string "duplicate rejected globally" "EEXIST" (errno_of results)

let test_slabinfo_reflects_allocations () =
  let k, s, r = with_containers () in
  let snap = K.State.snapshot k in
  let before = read_proc k r "/proc/slabinfo" in
  K.State.restore k snap;
  let _ = run k s "r0 = socket(1)\nr1 = msgget(101)" in
  let after = read_proc k r "/proc/slabinfo" in
  check_bool "slab counter moved" false (String.equal before after)

(* --- syscall layer: errors ---------------------------------------------------- *)

let test_ebadf () =
  let k, _, r = with_containers () in
  check_string "read" "EBADF" (errno_of (run k r "r0 = read(99)"));
  check_string "close" "EBADF" (errno_of (run k r "r0 = close(99)"));
  check_string "bind" "EBADF" (errno_of (run k r "r0 = bind(99, 1000)"))

let test_einval_args () =
  let k, _, r = with_containers () in
  check_string "socket bad domain" "EINVAL" (errno_of (run k r "r0 = socket(77)"));
  check_string "missing args" "EINVAL" (errno_of (run k r "r0 = socket()"))

let test_eopnotsupp () =
  let k, _, r = with_containers () in
  check_string "sctp_assoc on tcp" "EOPNOTSUPP"
    (errno_of (run k r "r0 = socket(1)\nr1 = sctp_assoc(r0)"));
  check_string "flowlabel on tcp" "EOPNOTSUPP"
    (errno_of (run k r "r0 = socket(1)\nr1 = flowlabel_request(r0, 1, 1)"))

let test_open_missing () =
  let k, _, r = with_containers () in
  check_string "bogus proc file" "ENOENT"
    (errno_of (run k r "r0 = open(\"/proc/bogus\")"));
  check_string "missing tmp file" "ENOENT"
    (errno_of (run k r "r0 = open(\"/tmp/nope\")"))

let test_sysctl_unknown () =
  let k, _, r = with_containers () in
  check_string "unknown sysctl" "ENOENT"
    (errno_of (run k r "r0 = sysctl_read(\"net/bogus\")"))

(* --- interpreter ---------------------------------------------------------------- *)

let test_interp_ref_resolution () =
  let k, _, r = with_containers () in
  let results = run k r "r0 = socket(1)\nr1 = get_cookie(r0)" in
  check_int "cookie obtained" 1 (last_ret results).K.Sysret.ret

let test_interp_failed_ref_yields_ebadf () =
  let k, _, r = with_containers () in
  (* call 0 fails (bad domain), so r0 resolves to a negative fd *)
  let results = run k r "r0 = socket(77)\nr1 = get_cookie(r0)" in
  check_string "cascaded failure" "EBADF" (errno_of results)

let test_interp_result_count () =
  let k, _, r = with_containers () in
  let results = run k r "r0 = getpid()\nr1 = getpid()\nr2 = getpid()" in
  check_int "all calls executed" 3 (List.length results)

let test_interp_deterministic_from_snapshot () =
  let k, _, r = with_containers () in
  let snap = K.State.snapshot k in
  let text = "r0 = socket(1)\nr1 = get_cookie(r0)\nr2 = sctp_assoc(r1)" in
  let a = run k r text in
  K.State.restore k snap;
  let b = run k r text in
  let rets rs = List.map (fun x -> x.K.Interp.ret.K.Sysret.ret) rs in
  check (Alcotest.list Alcotest.int) "identical replay" (rets a) (rets b)

let test_snapshot_isolates_executions () =
  let k, s, r = with_containers () in
  let snap = K.State.snapshot k in
  let _ = run k s "r0 = socket(3)" in
  K.State.restore k snap;
  let content = read_proc k r "/proc/net/ptype" in
  check_string "state fully rolled back" "Type Device      Function" content

let test_bugs_for_version () =
  let b513 = K.Bugs.for_version "5.13" in
  check_bool "new bugs present" true (K.Bugs.present b513 K.Bugs.B1_ptype_leak);
  check_bool "KD present" true (K.Bugs.present b513 K.Bugs.KD_conntrack_max);
  check_bool "KA absent" false (K.Bugs.present b513 K.Bugs.KA_prio_user);
  let b44 = K.Bugs.for_version "4.4" in
  check_bool "KA present in 4.4" true (K.Bugs.present b44 K.Bugs.KA_prio_user);
  check_bool "B1 absent in 4.4" false (K.Bugs.present b44 K.Bugs.B1_ptype_leak)

let test_bugs_fix_inject () =
  let set = K.Bugs.for_version "5.13" in
  let set = K.Bugs.fix set K.Bugs.B1_ptype_leak in
  check_bool "fixed" false (K.Bugs.present set K.Bugs.B1_ptype_leak);
  let set = K.Bugs.inject set K.Bugs.KA_prio_user in
  check_bool "injected" true (K.Bugs.present set K.Bugs.KA_prio_user)

let suite =
  [
    Alcotest.test_case "var: snapshot/restore roundtrip" `Quick
      test_var_snapshot_roundtrip;
    Alcotest.test_case "var: unique addresses" `Quick test_var_addresses_unique;
    Alcotest.test_case "heap: cross-heap restore rejected" `Quick
      test_restore_rejects_foreign_snapshot;
    Alcotest.test_case "heap: incremental restore stats" `Quick
      test_restore_incremental_stats;
    Alcotest.test_case "var: traced accesses" `Quick test_var_traced_access;
    Alcotest.test_case "var: uninstrumented is silent" `Quick
      test_var_uninstrumented_silent;
    Alcotest.test_case "var: irq accesses filtered" `Quick test_var_irq_filtered;
    Alcotest.test_case "kfun: stack balance" `Quick test_kfun_stack_balance;
    Alcotest.test_case "kfun: stack restored on exception" `Quick
      test_kfun_stack_on_exception;
    Alcotest.test_case "kfun: registration idempotent" `Quick
      test_kfun_register_idempotent;
    Alcotest.test_case "clock: advances on tick" `Quick test_clock_advances;
    Alcotest.test_case "clock: base shift" `Quick test_clock_base_shift;
    Alcotest.test_case "namespace: put/get" `Quick test_namespace_put_get;
    Alcotest.test_case "namespace: distinct clone flags" `Quick
      test_namespace_flags_distinct;
    Alcotest.test_case "containers: fresh namespaces" `Quick
      test_containers_get_fresh_namespaces;
    Alcotest.test_case "containers: host keeps initial ns" `Quick
      test_host_container_keeps_initial_ns;
    Alcotest.test_case "unshare: selective flags" `Quick test_unshare_selective;
    Alcotest.test_case "fds: numbered per process" `Quick
      test_fd_numbers_per_process;
    Alcotest.test_case "ptype: leaks on buggy kernel (#1)" `Quick
      test_ptype_leak_buggy;
    Alcotest.test_case "ptype: isolated on fixed kernel" `Quick
      test_ptype_isolated_fixed;
    Alcotest.test_case "ptype: own socket visible" `Quick
      test_ptype_own_socket_visible;
    Alcotest.test_case "ptype: close unregisters" `Quick
      test_ptype_close_unregisters;
    Alcotest.test_case "flowlabel: send DoS on buggy kernel (#2)" `Quick
      test_flowlabel_dos_buggy;
    Alcotest.test_case "flowlabel: isolated on fixed kernel" `Quick
      test_flowlabel_isolated_fixed;
    Alcotest.test_case "flowlabel: connect DoS on buggy kernel (#4)" `Quick
      test_flowlabel_connect_buggy;
    Alcotest.test_case "flowlabel: registered label still works" `Quick
      test_flowlabel_registered_label_works;
    Alcotest.test_case "flowlabel: label 0 always admissible" `Quick
      test_flowlabel_no_label_always_ok;
    Alcotest.test_case "flowlabel: duplicate registration" `Quick
      test_flowlabel_duplicate_registration;
    Alcotest.test_case "rds: cross-container bind conflict (#3)" `Quick
      test_rds_bind_conflict_buggy;
    Alcotest.test_case "rds: isolated on fixed kernel" `Quick
      test_rds_bind_isolated_fixed;
    Alcotest.test_case "rds: same-ns conflict remains on fixed kernel" `Quick
      test_rds_bind_same_ns_conflict;
    Alcotest.test_case "sctp: assoc ids shift on buggy kernel (#7)" `Quick
      test_sctp_assoc_shifts_buggy;
    Alcotest.test_case "sctp: per-ns ids on fixed kernel" `Quick
      test_sctp_assoc_isolated_fixed;
    Alcotest.test_case "cookie: stable per socket" `Quick
      test_cookie_stable_per_socket;
    Alcotest.test_case "cookie: global counter on buggy kernel (#6)" `Quick
      test_cookie_global_buggy;
    Alcotest.test_case "cookie: per-ns on fixed kernel" `Quick
      test_cookie_perns_fixed;
    Alcotest.test_case "sockstat: counts foreign sockets (#5)" `Quick
      test_sockstat_counts_foreign_buggy;
    Alcotest.test_case "sockstat: isolated on fixed kernel" `Quick
      test_sockstat_isolated_fixed;
    Alcotest.test_case "protomem: leaks via sockstat (#8)" `Quick
      test_protomem_leaks_buggy;
    Alcotest.test_case "protomem: leaks via protocols (#9)" `Quick
      test_protocols_leaks_buggy;
    Alcotest.test_case "protomem: isolated on fixed kernel" `Quick
      test_protocols_isolated_fixed;
    Alcotest.test_case "conntrack: max global on buggy kernel (D)" `Quick
      test_conntrack_max_global_buggy;
    Alcotest.test_case "conntrack: max per-ns on fixed kernel" `Quick
      test_conntrack_max_perns_fixed;
    Alcotest.test_case "conntrack: dump is time-dependent (F)" `Quick
      test_conntrack_dump_nondeterministic;
    Alcotest.test_case "somaxconn: global by design" `Quick
      test_somaxconn_global_by_design;
    Alcotest.test_case "uevent: broadcast on buggy kernel (B)" `Quick
      test_uevent_broadcast_buggy;
    Alcotest.test_case "uevent: isolated on fixed kernel" `Quick
      test_uevent_isolated_fixed;
    Alcotest.test_case "uevent: own events delivered" `Quick
      test_uevent_own_events_delivered;
    Alcotest.test_case "netdev: duplicate name rejected" `Quick
      test_netdev_duplicate_name;
    Alcotest.test_case "ipvs: leaks on buggy kernel (C)" `Quick
      test_ipvs_leak_buggy;
    Alcotest.test_case "ipvs: isolated on fixed kernel" `Quick
      test_ipvs_isolated_fixed;
    Alcotest.test_case "prio: PRIO_USER crosses ns on buggy kernel (A)" `Quick
      test_prio_user_crosses_ns_buggy;
    Alcotest.test_case "prio: isolated on fixed kernel" `Quick
      test_prio_user_isolated_fixed;
    Alcotest.test_case "prio: PRIO_PROCESS isolated" `Quick
      test_prio_process_isolated;
    Alcotest.test_case "uts: hostnames isolated" `Quick test_uts_isolated;
    Alcotest.test_case "uts: own hostname" `Quick test_uts_own_hostname;
    Alcotest.test_case "ipc: queues isolated" `Quick test_ipc_isolated;
    Alcotest.test_case "ipc: same-ns delivery" `Quick test_ipc_same_ns_delivery;
    Alcotest.test_case "ipc: qids per namespace" `Quick test_ipc_qids_per_ns;
    Alcotest.test_case "io_uring: escapes mount ns on buggy kernel (E)" `Quick
      test_iouring_escapes_buggy;
    Alcotest.test_case "io_uring: confined on fixed kernel" `Quick
      test_iouring_confined_fixed;
    Alcotest.test_case "open: respects mount ns even on buggy kernel" `Quick
      test_open_respects_mount_ns;
    Alcotest.test_case "tmp: create/open/read roundtrip" `Quick
      test_tmp_file_roundtrip;
    Alcotest.test_case "tokens: per-boot randomised ids (G)" `Quick
      test_token_ids_salted;
    Alcotest.test_case "sock_diag: constants never hit (G)" `Quick
      test_sock_diag_constants_miss;
    Alcotest.test_case "procfs: fstat shape" `Quick test_procfs_fstat_shape;
    Alcotest.test_case "devid: minor counter global (FP source)" `Quick
      test_devid_minor_global;
    Alcotest.test_case "crypto: registry global by design (FP source)" `Quick
      test_crypto_registry_global;
    Alcotest.test_case "crypto: duplicate registration global" `Quick
      test_crypto_duplicate_registration;
    Alcotest.test_case "slab: slabinfo reflects allocations (UI source)" `Quick
      test_slabinfo_reflects_allocations;
    Alcotest.test_case "syscalls: EBADF" `Quick test_ebadf;
    Alcotest.test_case "syscalls: EINVAL" `Quick test_einval_args;
    Alcotest.test_case "syscalls: EOPNOTSUPP" `Quick test_eopnotsupp;
    Alcotest.test_case "syscalls: open ENOENT" `Quick test_open_missing;
    Alcotest.test_case "syscalls: unknown sysctl" `Quick test_sysctl_unknown;
    Alcotest.test_case "interp: resource resolution" `Quick
      test_interp_ref_resolution;
    Alcotest.test_case "interp: failed ref cascades to EBADF" `Quick
      test_interp_failed_ref_yields_ebadf;
    Alcotest.test_case "interp: every call produces a result" `Quick
      test_interp_result_count;
    Alcotest.test_case "interp: deterministic from snapshot" `Quick
      test_interp_deterministic_from_snapshot;
    Alcotest.test_case "snapshot: isolates executions" `Quick
      test_snapshot_isolates_executions;
    Alcotest.test_case "bugs: per-version population" `Quick
      test_bugs_for_version;
    Alcotest.test_case "bugs: fix and inject" `Quick test_bugs_fix_inject;
  ]
