(* Whole-pipeline properties, checked with qcheck over randomly
   generated programs: execution determinism from snapshots, silence of
   the fixed kernel on every curated reproducer, and self-consistency of
   the bounds learner. *)

module K = Kit_kernel
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Corpus = Kit_abi.Corpus
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Ast = Kit_trace.Ast
module Bounds = Kit_trace.Bounds
module Known_bugs = Kit_core.Known_bugs

(* Random programs drawn from the corpus generator, so they are
   well-formed in the same way campaign inputs are. *)
let gen_program =
  QCheck.Gen.(
    map
      (fun (seed, idx) ->
        let corpus = Corpus.generate ~seed ~size:8 in
        List.nth corpus (idx mod List.length corpus))
      (pair small_nat small_nat))

let arbitrary_program = QCheck.make ~print:Syzlang.print gen_program

let arbitrary_pair = QCheck.pair arbitrary_program arbitrary_program

(* Shared environments: properties run hundreds of cases, so reuse the
   booted kernels (every execution reloads the snapshot anyway). *)
let buggy_runner = lazy (Runner.create (Env.create (K.Config.v5_13 ())))
let fixed_runner = lazy (Runner.create (Env.create (K.Config.fixed ())))

let prop_execution_deterministic =
  QCheck.Test.make ~name:"execute is deterministic per test case" ~count:60
    arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force buggy_runner in
      let a = Runner.execute runner ~sender ~receiver in
      let b = Runner.execute runner ~sender ~receiver in
      Ast.equal a.Runner.trace_a b.Runner.trace_a
      && Ast.equal a.Runner.trace_b b.Runner.trace_b
      && a.Runner.interfered = b.Runner.interfered)

let prop_interfered_subset_of_receiver =
  QCheck.Test.make ~name:"interfered indices are valid receiver calls"
    ~count:60 arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force buggy_runner in
      let outcome = Runner.execute runner ~sender ~receiver in
      List.for_all
        (fun i -> i >= 0 && i < max 1 (Program.length receiver))
        outcome.Runner.interfered)

let prop_self_interference_masked_or_real =
  (* Running the receiver as its own sender can only diverge through the
     genuinely shared kernel state; on the fully fixed kernel the only
     surviving divergences are the by-design global resources, so the
     masked interference must never name a call the spec protects as
     namespaced-only (hostname). *)
  QCheck.Test.make ~name:"fixed kernel never interferes on hostnames"
    ~count:60 arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force fixed_runner in
      let outcome = Runner.execute runner ~sender ~receiver in
      List.for_all
        (fun i ->
          match Program.nth receiver i with
          | Some { Program.sysno = Kit_abi.Sysno.Gethostname; _ } -> false
          | Some _ | None -> true)
        outcome.Runner.interfered)

let prop_bounds_cover_learning_inputs =
  (* Bounds learned from a set of runs never flag those same runs. *)
  QCheck.Test.make ~name:"bounds cover their learning inputs" ~count:100
    (QCheck.pair QCheck.small_nat QCheck.small_nat) (fun (seed, idx) ->
      let corpus = Corpus.generate ~seed ~size:6 in
      let receiver = List.nth corpus (idx mod List.length corpus) in
      let runner = Lazy.force buggy_runner in
      let base = runner.Runner.env.Env.base0 in
      let reference = Runner.run_receiver runner ~base receiver in
      let alt = Runner.run_receiver runner ~base:(base + 7_777) receiver in
      let bounds = Bounds.learn reference [ alt ] in
      Bounds.check bounds reference = [] && Bounds.check bounds alt = [])

let test_fixed_kernel_silences_reproducers () =
  (* Every curated Table 3 reproducer is silent on the fixed kernel. *)
  List.iter
    (fun (case : Known_bugs.case) ->
      let env =
        Env.create ~sender_host:case.Known_bugs.sender_host (K.Config.fixed ())
      in
      let runner = Runner.create env in
      let outcome =
        Runner.execute runner
          ~sender:(Syzlang.parse case.Known_bugs.sender)
          ~receiver:(Syzlang.parse case.Known_bugs.receiver)
      in
      Alcotest.check Alcotest.int
        (Printf.sprintf "case %s silent when fixed" case.Known_bugs.label)
        0
        (List.length outcome.Runner.masked_diffs))
    Known_bugs.cases

let suite =
  [
    QCheck_alcotest.to_alcotest prop_execution_deterministic;
    QCheck_alcotest.to_alcotest prop_interfered_subset_of_receiver;
    QCheck_alcotest.to_alcotest prop_self_interference_masked_or_real;
    QCheck_alcotest.to_alcotest prop_bounds_cover_learning_inputs;
    Alcotest.test_case "fixed kernel silences every reproducer" `Quick
      test_fixed_kernel_silences_reproducers;
  ]
