(* Whole-pipeline properties, checked with qcheck over randomly
   generated programs: execution determinism from snapshots, silence of
   the fixed kernel on every curated reproducer, and self-consistency of
   the bounds learner. *)

module K = Kit_kernel
module Program = Kit_abi.Program
module Syzlang = Kit_abi.Syzlang
module Corpus = Kit_abi.Corpus
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Ast = Kit_trace.Ast
module Bounds = Kit_trace.Bounds
module Known_bugs = Kit_core.Known_bugs
module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Fault = Kit_kernel.Fault

(* Random programs drawn from the corpus generator, so they are
   well-formed in the same way campaign inputs are. *)
let gen_program =
  QCheck.Gen.(
    map
      (fun (seed, idx) ->
        let corpus = Corpus.generate ~seed ~size:8 in
        List.nth corpus (idx mod List.length corpus))
      (pair small_nat small_nat))

let arbitrary_program = QCheck.make ~print:Syzlang.print gen_program

let arbitrary_pair = QCheck.pair arbitrary_program arbitrary_program

(* Shared environments: properties run hundreds of cases, so reuse the
   booted kernels (every execution reloads the snapshot anyway). *)
let buggy_runner = lazy (Runner.create (Env.create (K.Config.v5_13 ())))
let fixed_runner = lazy (Runner.create (Env.create (K.Config.fixed ())))

let prop_execution_deterministic =
  QCheck.Test.make ~name:"execute is deterministic per test case" ~count:60
    arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force buggy_runner in
      let a = Runner.execute runner ~sender ~receiver in
      let b = Runner.execute runner ~sender ~receiver in
      Ast.equal a.Runner.trace_a b.Runner.trace_a
      && Ast.equal a.Runner.trace_b b.Runner.trace_b
      && a.Runner.interfered = b.Runner.interfered)

let prop_interfered_subset_of_receiver =
  QCheck.Test.make ~name:"interfered indices are valid receiver calls"
    ~count:60 arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force buggy_runner in
      let outcome = Runner.execute runner ~sender ~receiver in
      List.for_all
        (fun i -> i >= 0 && i < max 1 (Program.length receiver))
        outcome.Runner.interfered)

let prop_self_interference_masked_or_real =
  (* Running the receiver as its own sender can only diverge through the
     genuinely shared kernel state; on the fully fixed kernel the only
     surviving divergences are the by-design global resources, so the
     masked interference must never name a call the spec protects as
     namespaced-only (hostname). *)
  QCheck.Test.make ~name:"fixed kernel never interferes on hostnames"
    ~count:60 arbitrary_pair (fun (sender, receiver) ->
      let runner = Lazy.force fixed_runner in
      let outcome = Runner.execute runner ~sender ~receiver in
      List.for_all
        (fun i ->
          match Program.nth receiver i with
          | Some { Program.sysno = Kit_abi.Sysno.Gethostname; _ } -> false
          | Some _ | None -> true)
        outcome.Runner.interfered)

let prop_bounds_cover_learning_inputs =
  (* Bounds learned from a set of runs never flag those same runs. *)
  QCheck.Test.make ~name:"bounds cover their learning inputs" ~count:100
    (QCheck.pair QCheck.small_nat QCheck.small_nat) (fun (seed, idx) ->
      let corpus = Corpus.generate ~seed ~size:6 in
      let receiver = List.nth corpus (idx mod List.length corpus) in
      let runner = Lazy.force buggy_runner in
      let base = runner.Runner.env.Env.base0 in
      let reference = Runner.run_receiver runner ~base receiver in
      let alt = Runner.run_receiver runner ~base:(base + 7_777) receiver in
      let bounds = Bounds.learn reference [ alt ] in
      Bounds.check bounds reference = [] && Bounds.check bounds alt = [])

(* --- execution hot-path equivalences ------------------------------------
   The three optimisations of the execution loop are behaviour-preserving
   by construction; these properties pin that down end to end. *)

let prop_incremental_restore_equals_full =
  (* Two identical heaps take the same snapshot and the same random
     write sequences; one restores incrementally (dirty cells only), the
     other with ~full:true. Every variable — including one registered
     after the capture, which neither path may touch — must agree after
     each round. *)
  QCheck.Test.make ~name:"incremental restore = full restore" ~count:100
    QCheck.(
      pair
        (small_list (pair small_nat small_nat))
        (small_list (pair small_nat small_nat)))
    (fun (writes1, writes2) ->
      let n_vars = 6 in
      let make () =
        let heap = K.Heap.create () in
        let ctx = K.Ctx.create () in
        let vars =
          Array.init n_vars (fun i ->
              K.Var.alloc heap ~name:(Printf.sprintf "v%d" i) i)
        in
        (heap, ctx, vars)
      in
      let h1, c1, v1 = make () in
      let h2, c2, v2 = make () in
      let s1 = K.Heap.snapshot h1 in
      let s2 = K.Heap.snapshot h2 in
      let late1 = K.Var.alloc h1 ~name:"late" 99 in
      let late2 = K.Var.alloc h2 ~name:"late" 99 in
      let apply ctx vars late writes =
        List.iter
          (fun (i, x) ->
            if i mod (n_vars + 1) = n_vars then K.Var.write ctx late x
            else K.Var.write ctx vars.(i mod (n_vars + 1)) x)
          writes
      in
      let agree () =
        K.Var.peek late1 = K.Var.peek late2
        && Array.for_all2
             (fun a b -> K.Var.peek a = K.Var.peek b)
             v1 v2
      in
      apply c1 v1 late1 writes1;
      apply c2 v2 late2 writes1;
      K.Heap.restore h1 s1;
      K.Heap.restore ~full:true h2 s2;
      let round1 = agree () in
      apply c1 v1 late1 writes2;
      apply c2 v2 late2 writes2;
      K.Heap.restore h1 s1;
      K.Heap.restore ~full:true h2 s2;
      round1 && agree ())

(* Structural fingerprint of what a campaign concluded. No_sharing
   matters: the baseline cache makes reports physically share trace
   ASTs, and Marshal's back-references would encode that sharing even
   though the reports are structurally identical. *)
let campaign_fp (c : Campaign.t) =
  Digest.string
    (Marshal.to_string
       (c.Campaign.reports, c.Campaign.funnel, c.Campaign.quarantined)
       [ Marshal.No_sharing ])

let prop_baseline_cache_invisible =
  (* The receiver-solo baseline depends only on the receiver program, so
     memoizing it can change execution counts but never reports, funnel
     or quarantine — with or without transient faults armed (fault-armed
     runs bypass the cache entirely). *)
  QCheck.Test.make ~name:"baseline cache never changes campaign results"
    ~count:6
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, intensity) ->
      let options =
        { Campaign.default_options with
          Campaign.seed;
          corpus_size = 24;
          faults = Fault.schedule_of_seed ~seed ~intensity }
      in
      campaign_fp (Campaign.run { options with Campaign.baseline_cache = true })
      = campaign_fp
          (Campaign.run { options with Campaign.baseline_cache = false }))

let prop_parallel_campaign_equals_sequential =
  QCheck.Test.make ~name:"campaign domains=N = domains=1" ~count:4
    QCheck.(pair (int_range 0 1000) (int_range 2 4))
    (fun (seed, domains) ->
      let options =
        { Campaign.default_options with Campaign.seed; corpus_size = 24 }
      in
      campaign_fp (Campaign.run { options with Campaign.domains })
      = campaign_fp (Campaign.run options))

let prop_parallel_distrib_equals_sequential =
  (* Worker results merge in worker order, so the domain count is
     invisible; killing a worker task (which takes its whole domain
     down) reshards through the same path as a planned death, so the
     merged report multiset, funnel and quarantine survive that too. *)
  QCheck.Test.make ~name:"distrib domains=N = domains=1, crashes included"
    ~count:4
    QCheck.(pair (int_range 0 1000) (pair (int_range 2 4) (int_range 0 3)))
    (fun (seed, (domains, crashed)) ->
      let options =
        { Campaign.default_options with Campaign.seed; corpus_size = 24 }
      in
      let c = Campaign.run options in
      let run ~domains ~crashes =
        Distrib.execute ~domains ~crashes options c.Campaign.corpus
          c.Campaign.generation ~workers:4
      in
      let fp_one x = Digest.string (Marshal.to_string x [ Marshal.No_sharing ]) in
      let multiset l = List.sort compare (List.map fp_one l) in
      let fps (d : Distrib.t) =
        ( multiset d.Distrib.reports,
          fp_one d.Distrib.funnel,
          multiset d.Distrib.quarantined )
      in
      let reference = run ~domains:1 ~crashes:[] in
      fps (run ~domains ~crashes:[]) = fps reference
      && fps (run ~domains ~crashes:[ crashed ]) = fps reference)

(* --- streaming pipeline equivalences ------------------------------------ *)

(* The streaming fingerprint additionally pins df_total: the online
   clusterer maintains it incrementally, the batch path scans the built
   map. *)
let stream_fp (c : Campaign.t) =
  Digest.string
    (Marshal.to_string
       ( c.Campaign.reports, c.Campaign.funnel, c.Campaign.quarantined,
         c.Campaign.df_total )
       [ Marshal.No_sharing ])

let prop_streaming_equals_batch =
  (* Execute-while-generate must be invisible: for any strategy, any
     domain count and any transient-fault schedule, the streaming
     pipeline produces the same reports, funnel, quarantine and df_total
     as the batch campaign — only wall-clock shape and execution counts
     may differ. *)
  QCheck.Test.make ~name:"streaming campaign = batch campaign" ~count:5
    QCheck.(
      pair (int_range 0 1000)
        (pair (int_range 0 3) (pair (int_range 1 3) (int_range 0 2))))
    (fun (seed, (strat, (domains, intensity))) ->
      let strategy =
        match strat with
        | 0 -> Kit_gen.Cluster.Df_ia
        | 1 -> Kit_gen.Cluster.Df_st 1
        | 2 -> Kit_gen.Cluster.Rand 30
        | _ -> Kit_gen.Cluster.Df
      in
      let options =
        { Campaign.default_options with
          Campaign.seed;
          corpus_size = 24;
          strategy;
          domains;
          faults = Fault.schedule_of_seed ~seed ~intensity }
      in
      stream_fp (Campaign.stream_result (Campaign.stream options))
      = stream_fp (Campaign.run options))

let prop_extend_delta_is_cheaper =
  (* Growing a streaming campaign re-executes only new and
     representative-changed clusters: the result is identical to a
     from-scratch campaign of the final corpus size, and the delta
     executes strictly fewer cluster representatives. *)
  QCheck.Test.make ~name:"extend = from-scratch, strictly fewer executions"
    ~count:4
    QCheck.(pair (int_range 0 1000) (pair (int_range 12 20) (int_range 1 8)))
    (fun (seed, (base, add)) ->
      let options =
        { Campaign.default_options with Campaign.seed; corpus_size = base }
      in
      let s = Campaign.stream options in
      let _ = Campaign.stream_result s in
      let before = (Campaign.stream_stats s).Campaign.executed_cases in
      let grown = Campaign.extend s ~add in
      let delta = (Campaign.stream_stats s).Campaign.executed_cases - before in
      let scratch =
        Campaign.run { options with Campaign.corpus_size = base + add }
      in
      let scratch_reps =
        List.length scratch.Campaign.generation.Kit_gen.Cluster.reps
      in
      stream_fp grown = stream_fp scratch && delta < scratch_reps)

let test_fixed_kernel_silences_reproducers () =
  (* Every curated Table 3 reproducer is silent on the fixed kernel. *)
  List.iter
    (fun (case : Known_bugs.case) ->
      let env =
        Env.create ~sender_host:case.Known_bugs.sender_host (K.Config.fixed ())
      in
      let runner = Runner.create env in
      let outcome =
        Runner.execute runner
          ~sender:(Syzlang.parse case.Known_bugs.sender)
          ~receiver:(Syzlang.parse case.Known_bugs.receiver)
      in
      Alcotest.check Alcotest.int
        (Printf.sprintf "case %s silent when fixed" case.Known_bugs.label)
        0
        (List.length outcome.Runner.masked_diffs))
    Known_bugs.cases

let suite =
  [
    QCheck_alcotest.to_alcotest prop_execution_deterministic;
    QCheck_alcotest.to_alcotest prop_interfered_subset_of_receiver;
    QCheck_alcotest.to_alcotest prop_self_interference_masked_or_real;
    QCheck_alcotest.to_alcotest prop_bounds_cover_learning_inputs;
    QCheck_alcotest.to_alcotest prop_incremental_restore_equals_full;
    QCheck_alcotest.to_alcotest prop_baseline_cache_invisible;
    QCheck_alcotest.to_alcotest prop_parallel_campaign_equals_sequential;
    QCheck_alcotest.to_alcotest prop_parallel_distrib_equals_sequential;
    QCheck_alcotest.to_alcotest prop_streaming_equals_batch;
    QCheck_alcotest.to_alcotest prop_extend_delta_is_cheaper;
    Alcotest.test_case "fixed kernel silences every reproducer" `Quick
      test_fixed_kernel_silences_reproducers;
  ]
