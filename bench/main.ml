(* The benchmark harness: regenerates every evaluation table of the
   paper (Tables 2-6 and the section 6.5 performance figures), prints the
   jump-label and specification-refinement ablations called out in
   DESIGN.md, and then times each pipeline stage with Bechamel — one
   Test.make per table plus micro-benchmarks of the hot paths.

   Environment knobs: KIT_BENCH_CORPUS (table corpus size, default 320),
   KIT_BENCH_QUOTA (seconds per bechamel test, default 0.5),
   KIT_BENCH_EXEC_CORPUS (hot-path section corpus, default 320),
   KIT_BENCH_ONLY_EXEC (run only the hot-path section — the CI smoke
   entry point), KIT_BENCH_PIPE_CORPUS / KIT_BENCH_PIPE_ADD (streaming
   pipeline section corpus and growth, defaults 160/64),
   KIT_BENCH_ONLY_PIPELINE (run only the streaming pipeline section),
   KIT_BENCH_TRACE_CORPUS / KIT_BENCH_ONLY_TRACE (trace-analysis
   section corpus, default 160, and its section-only switch),
   KIT_BENCH_POOL_CORPUS / KIT_BENCH_POOL_PROCS / KIT_BENCH_ONLY_POOL
   (process-pool section: corpus default 96, procs default 4, and its
   section-only switch),
   KIT_BENCH_SERVE_CORPUS / KIT_BENCH_SERVE_PROCS / KIT_BENCH_ONLY_SERVE
   (multi-tenant scheduler section: per-tenant corpus default 96, procs
   default 4, and its section-only switch),
   KIT_BENCH_ONLY_REPR (run only the compact-representation
   micro-section: packed trace compare, bitset flow intersection and
   FNV fingerprints against their naive baselines),
   KIT_BENCH_SCHED_CORPUS / KIT_BENCH_SCHED_N / KIT_BENCH_SCHED_ITERS /
   KIT_BENCH_ONLY_SCHED (interleaved schedule-search section: campaign
   corpus default 96, schedule seeds per case default 128, sequential
   overhead iterations default 400, and its section-only switch),
   KIT_BENCH_COV_CORPUS / KIT_BENCH_COV_ITERS / KIT_BENCH_ONLY_COV
   (coverage-ledger section: campaign corpus default 96, isolated
   marking-pass iterations default 50, and its section-only switch),
   KIT_BENCH_JSON=PATH (write the section timings and speedup ratios as
   a single JSON object to PATH). *)

open Bechamel
open Toolkit

module Campaign = Kit_core.Campaign
module Tables = Kit_core.Tables
module Oracle = Kit_core.Oracle
module Known_bugs = Kit_core.Known_bugs
module Cluster = Kit_gen.Cluster
module Dataflow = Kit_gen.Dataflow
module Corpus = Kit_abi.Corpus
module Syzlang = Kit_abi.Syzlang
module Config = Kit_kernel.Config
module Bugs = Kit_kernel.Bugs
module State = Kit_kernel.State
module Spec = Kit_spec.Spec
module Env = Kit_exec.Env
module Runner = Kit_exec.Runner
module Supervisor = Kit_exec.Supervisor
module Fault = Kit_kernel.Fault
module Collect = Kit_profile.Collect
module Compare = Kit_trace.Compare
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Jsonl = Kit_obs.Jsonl
module Tracer = Kit_obs.Tracer
module Spantree = Kit_obs.Spantree
module Profile = Kit_obs.Profile
module Distrib = Kit_core.Distrib
module Pool = Kit_serve.Pool
module Proto = Kit_serve.Proto
module Sched = Kit_serve.Sched
module Tenant = Kit_serve.Tenant
module Ast = Kit_trace.Ast
module Bitset = Kit_compact.Bitset
module Rss = Kit_compact.Rss
module Coverage = Kit_obs.Coverage
module Stackrec = Kit_profile.Stackrec
module Accessmap = Kit_profile.Accessmap

let getenv_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let getenv_float name default =
  match Sys.getenv_opt name with
  | Some v -> (
    match float_of_string_opt v with Some n -> n | None -> default)
  | None -> default

let corpus_size = getenv_int "KIT_BENCH_CORPUS" 320
let quota = getenv_float "KIT_BENCH_QUOTA" 0.5

(* --- table regeneration ------------------------------------------------ *)

let print_tables () =
  Fmt.pr "=============================================================@.";
  Fmt.pr " KIT evaluation tables (corpus size %d, seed %d)@." corpus_size
    Campaign.default_options.Campaign.seed;
  Fmt.pr "=============================================================@.@.";
  let options = { Campaign.default_options with Campaign.corpus_size } in
  let prepared = Campaign.prepare options in
  let _, t4, (df_ia, _, _, _) = Tables.table4 prepared in
  let found, t2 = Tables.table2 df_ia in
  Fmt.pr "-- Table 2: new functional interference bugs (paper: 9 found) --@.";
  Fmt.pr "%s@." t2;
  Fmt.pr "reproduced %d/9 new bugs@.@." (List.length found);
  let outcomes, t3 = Tables.table3 () in
  Fmt.pr "-- Table 3: known namespace bugs (paper: 5/7 reproduced) --@.";
  Fmt.pr "%s@." t3;
  Fmt.pr "reproduced %d/7 known bugs@.@." (Known_bugs.detected_count outcomes);
  Fmt.pr "-- Table 4: test case generation strategies --@.";
  Fmt.pr
    "   (paper: DF-IA 1.13M < DF-ST-1 3.32M < DF-ST-2 6.61M < RAND 8.66M << DF 234M;@.";
  Fmt.pr "    DF strategies 9/9, RAND 5/9)@.";
  Fmt.pr "%s@." t4;
  Fmt.pr "-- Table 5: test report filtering (paper: 15353 -> 891 -> 808) --@.";
  Fmt.pr "%s@.@." (Tables.table5 df_ia);
  let _, t6 = Tables.table6 df_ia in
  Fmt.pr "-- Table 6: test report aggregation --@.";
  Fmt.pr "%s@." t6;
  Fmt.pr "-- Performance (section 6.5) --@.";
  Fmt.pr "%s@.@." (Tables.performance df_ia)

(* --- ablations ---------------------------------------------------------- *)

(* CONFIG_JUMP_LABEL hides the flow-label static key from the profiler:
   data-flow generation misses bugs #2/#4 while RAND still finds them
   (paper, section 6.1). *)
let print_jump_label_ablation () =
  Fmt.pr "-- Ablation: CONFIG_JUMP_LABEL=y (paper, sec. 6.1) --@.";
  let options =
    { Campaign.default_options with
      Campaign.corpus_size;
      config = Config.v5_13 ~jump_label:true () }
  in
  let prepared = Campaign.prepare options in
  let df = Campaign.execute_prepared prepared in
  let found_df = Oracle.new_bugs_found df.Campaign.keyed in
  let missing =
    List.filter
      (fun b -> not (List.exists (Bugs.equal b) found_df))
      Bugs.new_bugs
  in
  Fmt.pr "DF-IA with jump labels: %d/9 (missing: %a)@." (List.length found_df)
    (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
    missing;
  let rand =
    Campaign.execute_prepared
      ~strategy:(Cluster.Rand (4 * corpus_size))
      prepared
  in
  let found_rand = Oracle.new_bugs_found rand.Campaign.keyed in
  let flowlabel_found =
    List.exists (Bugs.equal Bugs.B2_flowlabel_send) found_rand
    || List.exists (Bugs.equal Bugs.B4_flowlabel_connect) found_rand
  in
  Fmt.pr "RAND with jump labels: %d/9; finds a flow-label bug: %b@.@."
    (List.length found_rand) flowlabel_found

(* Refining the spec (dropping the /proc over-approximation) removes the
   crypto/slabinfo FP classes, at no cost in bugs found. *)
let print_spec_ablation () =
  Fmt.pr "-- Ablation: refined specification (drops Procfs_misc) --@.";
  let run spec =
    let options =
      { Campaign.default_options with Campaign.corpus_size; spec }
    in
    Campaign.run options
  in
  let describe label c =
    let found = Oracle.new_bugs_found c.Campaign.keyed in
    let fps =
      List.length
        (List.filter
           (fun k ->
             match Oracle.attribute_keyed k with
             | Oracle.False_positive _ | Oracle.Under_investigation -> true
             | Oracle.Bug _ -> false)
           c.Campaign.keyed)
    in
    Fmt.pr "%s: %d/9 bugs, %d reports, %d FP/UI reports@." label
      (List.length found)
      (List.length c.Campaign.reports)
      fps
  in
  describe "default spec" (run Spec.default);
  describe "refined spec" (run Spec.refined);
  Fmt.pr "@."

(* The time namespace is invisible to the standard pipeline but caught
   by the bounds-based detector (paper, section 7 / DESIGN.md E7+). *)
let print_bounds_ablation () =
  Fmt.pr "-- Ablation: time namespace via bounds-based detection (sec. 7) --@.";
  let env = Env.create (Config.v5_13 ()) in
  let runner = Runner.create env in
  let sender = Syzlang.parse "r0 = clock_settime(5)" in
  let receiver = Syzlang.parse "r0 = clock_gettime()" in
  let outcome = Runner.execute runner ~sender ~receiver in
  let violations = Runner.execute_bounds runner ~sender ~receiver in
  Fmt.pr
    "standard pipeline: %d masked divergences (missed); bounds mode: %d violations (caught)@.@."
    (List.length outcome.Runner.masked_diffs)
    (List.length violations)

(* Supervised execution must cost almost nothing when no faults are
   armed: the acceptance bar is within 10% of the raw runner's
   executions/sec with an empty schedule. Also demonstrates recovery
   cost under a seeded transient-fault schedule. *)
let print_supervision_overhead () =
  Fmt.pr "-- Supervision overhead (acceptance: <10%% with empty schedule) --@.";
  let config = Config.v5_13 () in
  let sender = Syzlang.parse "r0 = socket(3)" in
  let receiver = Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  let iters = getenv_int "KIT_BENCH_SUP_ITERS" 2000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    float_of_int iters /. dt
  in
  let raw =
    let runner = Runner.create (Env.create config) in
    time (fun () ->
        for _ = 1 to iters do
          ignore (Runner.execute runner ~sender ~receiver : Runner.outcome)
        done)
  in
  let supervised =
    let sup = Supervisor.create config in
    time (fun () ->
        for _ = 1 to iters do
          ignore (Supervisor.execute sup ~sender ~receiver : Runner.status)
        done)
  in
  let overhead = (raw -. supervised) /. raw *. 100.0 in
  Fmt.pr "raw runner:  %10.0f executions/s@." raw;
  Fmt.pr "supervised:  %10.0f executions/s (overhead %.1f%%)@." supervised
    overhead;
  let faulted =
    let fault =
      Fault.of_schedule (Fault.schedule_of_seed ~seed:7 ~intensity:8)
    in
    let sup = Supervisor.create ~fault config in
    time (fun () ->
        for _ = 1 to iters do
          ignore (Supervisor.execute sup ~sender ~receiver : Runner.status)
        done)
  in
  Fmt.pr "with 8 seeded transient faults: %10.0f executions/s@.@." faulted

(* Observability must be pay-for-what-you-use: a disabled (nop) bundle
   leaves the supervised path within noise of no instrumentation at
   all, and full recording — metrics + spans + the global per-sysno
   dispatch counters — stays cheap enough for month-long campaigns.
   Acceptance: nop-bundle overhead within noise (<10%). *)
let print_observability_overhead () =
  Fmt.pr "-- Observability overhead (off vs metrics-only vs full) --@.";
  let config = Config.v5_13 () in
  let sender = Syzlang.parse "r0 = socket(3)" in
  let receiver = Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  let iters = getenv_int "KIT_BENCH_OBS_ITERS" 2000 in
  let time obs =
    let sup = match obs with
      | None -> Supervisor.create config
      | Some obs -> Supervisor.create ~obs config
    in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (Supervisor.execute sup ~sender ~receiver : Runner.status)
    done;
    float_of_int iters /. (Unix.gettimeofday () -. t0)
  in
  let off = time (Some Obs.nop) in
  let metrics_only =
    time (Some (Obs.create ~tracer:Kit_obs.Tracer.nop ()))
  in
  Kit_obs.Metrics.set_enabled Kit_obs.Metrics.default true;
  let full = time (Some (Obs.create ())) in
  Kit_obs.Metrics.set_enabled Kit_obs.Metrics.default false;
  Kit_obs.Metrics.reset Kit_obs.Metrics.default;
  let pct base v = (base -. v) /. base *. 100.0 in
  Fmt.pr "nop bundle:    %10.0f executions/s@." off;
  Fmt.pr "metrics only:  %10.0f executions/s (overhead %.1f%%)@." metrics_only
    (pct off metrics_only);
  Fmt.pr
    "full (metrics + spans + syscall counters): %10.0f executions/s (overhead %.1f%%)@.@."
    full (pct off full)

(* --- execution hot path -------------------------------------------------
   The three stacked optimisations of the execution loop, each measured
   against its off switch on the same workload:
     1. incremental snapshot restore — fraction of heap cells replayed
        vs what full restores would have replayed (acceptance: <20%);
     2. baseline-trace memoization — program executions with the cache
        on vs off (execution B collapses to one per distinct receiver);
     3. multicore Distrib — wall-clock at --domains N vs sequential on
        an identical worker pool.
   Results accumulate into a JSON object written to $KIT_BENCH_JSON. *)

let bench_json : (string * Jsonl.t) list ref = ref []

let record key v = bench_json := (key, v) :: !bench_json

let write_bench_json () =
  match Sys.getenv_opt "KIT_BENCH_JSON" with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Jsonl.to_string (Jsonl.Obj (List.rev !bench_json)));
    output_char oc '\n';
    close_out oc;
    Fmt.pr "bench json: %s@." path

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let counter_of snap name =
  match List.assoc_opt name snap with
  | Some (Metrics.Counter_v n) -> n
  | Some (Metrics.Gauge_v _ | Metrics.Hist_v _) | None -> 0

let print_exec_hotpath () =
  Fmt.pr "-- Execution hot path: restore / baseline cache / domains --@.";
  let corpus_size = getenv_int "KIT_BENCH_EXEC_CORPUS" 320 in
  let options = { Campaign.default_options with Campaign.corpus_size } in
  record "exec_corpus" (Jsonl.Int corpus_size);
  (* 1. incremental restore: the heap counters live on the global default
     registry, so enable it around one campaign and read them back. *)
  Metrics.reset Metrics.default;
  Metrics.set_enabled Metrics.default true;
  let c_on, on_s = timed (fun () -> Campaign.run options) in
  Metrics.set_enabled Metrics.default false;
  let snap = Metrics.snapshot Metrics.default in
  Metrics.reset Metrics.default;
  let restored = counter_of snap "heap.cells_restored" in
  let total = counter_of snap "heap.cells_total" in
  let frac = if total = 0 then 1.0 else float_of_int restored /. float_of_int total in
  Fmt.pr
    "incremental restore:  %d of %d cells replayed (%.1f%% of full; acceptance <20%%)@."
    restored total (100.0 *. frac);
  record "restore_cells_replayed" (Jsonl.Int restored);
  record "restore_cells_total" (Jsonl.Int total);
  record "restore_replay_fraction" (Jsonl.Float frac);
  (* 2. baseline-trace memoization: same campaign, cache off. *)
  let c_off, off_s =
    timed (fun () ->
        Campaign.run { options with Campaign.baseline_cache = false })
  in
  let ratio =
    if c_on.Campaign.executions = 0 then 1.0
    else
      float_of_int c_off.Campaign.executions
      /. float_of_int c_on.Campaign.executions
  in
  Fmt.pr
    "baseline cache:       %d executions vs %d without (%.2fx fewer), %.3fs vs %.3fs@."
    c_on.Campaign.executions c_off.Campaign.executions ratio on_s off_s;
  Fmt.pr "                      reports identical: %b@."
    (List.length c_on.Campaign.reports = List.length c_off.Campaign.reports);
  record "baseline_executions_on" (Jsonl.Int c_on.Campaign.executions);
  record "baseline_executions_off" (Jsonl.Int c_off.Campaign.executions);
  record "baseline_execution_ratio" (Jsonl.Float ratio);
  record "campaign_s_cache_on" (Jsonl.Float on_s);
  record "campaign_s_cache_off" (Jsonl.Float off_s);
  (* 3. multicore Distrib: the same worker pool, sequential vs on a
     domain pool. Workers and their shards are identical, so this is a
     pure wall-clock comparison. DF-IA clustering leaves only a few
     hundred representatives — far too little work for parallelism to
     matter — so this stage uses a RAND generation, the big flat queue a
     real server-mode campaign distributes. *)
  let cores = Domain.recommended_domain_count () in
  let workers = getenv_int "KIT_BENCH_EXEC_WORKERS" 4 in
  let domains = getenv_int "KIT_BENCH_EXEC_DOMAINS" (min 4 cores) in
  let rand_budget = getenv_int "KIT_BENCH_EXEC_CASES" (16 * corpus_size) in
  let rand =
    Campaign.execute_prepared
      ~strategy:(Cluster.Rand rand_budget)
      (Campaign.prepare options)
  in
  let corpus = rand.Campaign.corpus and generation = rand.Campaign.generation in
  let run ~domains =
    Distrib.execute ~domains options corpus generation ~workers
  in
  (* Warm one round so allocator/code paths are hot for both sides. *)
  ignore (run ~domains:1 : Distrib.t);
  let d1, d1_s = timed (fun () -> run ~domains:1) in
  let dn, dn_s = timed (fun () -> run ~domains) in
  let speedup = if dn_s > 0.0 then d1_s /. dn_s else 1.0 in
  Fmt.pr
    "multicore distrib:    %d workers, %d cases: %.3fs sequential, %.3fs on %d domains (%.2fx)@."
    workers rand_budget d1_s dn_s domains speedup;
  if cores <= 1 then
    Fmt.pr
      "                      single-core host (%d recommended domains): a \
       wall-clock win needs real cores; this run checks overhead and \
       determinism only@."
      cores;
  Fmt.pr "                      reports identical: %b@."
    (List.length d1.Distrib.reports = List.length dn.Distrib.reports);
  record "cores" (Jsonl.Int cores);
  record "distrib_workers" (Jsonl.Int workers);
  record "distrib_domains" (Jsonl.Int domains);
  record "distrib_cases" (Jsonl.Int rand_budget);
  record "distrib_s_domains1" (Jsonl.Float d1_s);
  record "distrib_s_domainsN" (Jsonl.Float dn_s);
  record "distrib_speedup" (Jsonl.Float speedup);
  let rss = Rss.peak_kb () in
  Fmt.pr "peak rss:             %d kB (VmHWM)@." rss;
  record "exec_peak_rss_kb" (Jsonl.Int rss);
  Fmt.pr "@."

(* --- streaming pipeline -------------------------------------------------
   Batch vs streaming shape of the same campaign:
     1. time-to-first-report — the batch path pays the full profile +
        cluster barrier before the first execution, the streaming path
        executes sealed representatives while the corpus is still being
        profiled (batch TTFR measured by polling chunked execution);
     2. peak materialized flows — the batch pass sweeps a df_total-sized
        cross product, the online clusterer's working set is the largest
        single feed;
     3. delta campaigns — growing a finished stream re-executes only new
        and representative-changed clusters. *)

let print_pipeline_bench () =
  Fmt.pr "-- Streaming pipeline: TTFR / working set / delta campaigns --@.";
  (* 96 keeps the cluster count below saturation (~167 for this kernel),
     so the +64 growth demonstrably creates new clusters to re-execute. *)
  let corpus_size = getenv_int "KIT_BENCH_PIPE_CORPUS" 96 in
  let add = getenv_int "KIT_BENCH_PIPE_ADD" 64 in
  let options = { Campaign.default_options with Campaign.corpus_size } in
  record "pipeline_corpus" (Jsonl.Int corpus_size);
  record "pipeline_add" (Jsonl.Int add);
  (* 1a. batch: poll chunked execution until the first report lands. *)
  let (batch, batch_ttfr), batch_s =
    timed (fun () ->
        let t0 = Unix.gettimeofday () in
        let prepared = Campaign.prepare options in
        let ttfr = ref None in
        let rec go resume =
          match Campaign.execute_partial ?resume ~budget:8 prepared with
          | `Paused ck ->
            if !ttfr = None && Campaign.checkpoint_reports ck > 0 then
              ttfr := Some (Unix.gettimeofday () -. t0);
            go (Some ck)
          | `Done t ->
            if !ttfr = None && t.Campaign.reports <> [] then
              ttfr := Some (Unix.gettimeofday () -. t0);
            (t, !ttfr)
        in
        go None)
  in
  (* 1b. streaming: the stream records its own first-report clock. *)
  let (stream, s), stream_s =
    timed (fun () ->
        let s = Campaign.stream options in
        (Campaign.stream_result s, s))
  in
  let stats = Campaign.stream_stats s in
  let pp_ttfr ppf = function
    | Some t -> Fmt.pf ppf "%.4fs" t
    | None -> Fmt.string ppf "n/a (no reports)"
  in
  Fmt.pr "time to first report: batch %a, streaming %a (totals %.3fs / %.3fs)@."
    pp_ttfr batch_ttfr pp_ttfr stats.Campaign.first_report_s batch_s stream_s;
  Fmt.pr "identical results:    reports %b, df_total %b@."
    (List.length batch.Campaign.reports = List.length stream.Campaign.reports)
    (batch.Campaign.df_total = stream.Campaign.df_total);
  (* 2. working set: batch sweeps the full cross product, streaming's
     peak is one program's worth of group pairs. *)
  Fmt.pr "materialized flows:   batch sweep %d, streaming peak feed %d@."
    batch.Campaign.df_total stats.Campaign.peak_feed_pairs;
  record "pipeline_ttfr_batch_s"
    (match batch_ttfr with Some t -> Jsonl.Float t | None -> Jsonl.Null);
  record "pipeline_ttfr_stream_s"
    (match stats.Campaign.first_report_s with
    | Some t -> Jsonl.Float t
    | None -> Jsonl.Null);
  record "pipeline_total_batch_s" (Jsonl.Float batch_s);
  record "pipeline_total_stream_s" (Jsonl.Float stream_s);
  record "pipeline_flows_batch" (Jsonl.Int batch.Campaign.df_total);
  record "pipeline_flows_stream_peak" (Jsonl.Int stats.Campaign.peak_feed_pairs);
  (* 3. delta campaign vs from-scratch on the grown corpus. *)
  let before = stats.Campaign.executed_cases in
  let (grown, scratch), _ =
    timed (fun () ->
        ( Campaign.extend s ~add,
          Campaign.run { options with Campaign.corpus_size = corpus_size + add }
        ))
  in
  let delta = (Campaign.stream_stats s).Campaign.executed_cases - before in
  let scratch_reps = List.length scratch.Campaign.generation.Cluster.reps in
  Fmt.pr
    "delta campaign:       +%d programs re-executed %d of %d representatives \
     (identical reports: %b)@."
    add delta scratch_reps
    (List.length grown.Campaign.reports = List.length scratch.Campaign.reports);
  record "pipeline_delta_executed" (Jsonl.Int delta);
  record "pipeline_scratch_executed" (Jsonl.Int scratch_reps);
  let rss = Rss.peak_kb () in
  Fmt.pr "peak rss:             %d kB (VmHWM)@." rss;
  record "pipeline_peak_rss_kb" (Jsonl.Int rss);
  Fmt.pr "@."

(* --- trace analysis -----------------------------------------------------
   The causal trace toolchain on a real campaign ring:
     1. recording overhead — the same campaign with a nop tracer vs a
        recording one (spans are stamped by Pipeline and Supervisor
        either way; only the ring writes differ);
     2. analysis cost — Spantree.build + Profile.of_tree over the full
        ring, and the k-way Tracer.interleave on per-domain ring splits;
     3. export cost/size — Chrome trace-event serialization and folded
        stacks. *)

let print_trace_bench () =
  Fmt.pr "-- Trace analysis: recording / tree build / exports --@.";
  let corpus_size = getenv_int "KIT_BENCH_TRACE_CORPUS" 160 in
  let options = { Campaign.default_options with Campaign.corpus_size } in
  record "trace_corpus" (Jsonl.Int corpus_size);
  let _, base_s =
    timed (fun () ->
        Campaign.run
          { options with
            Campaign.obs = Some (Obs.create ~tracer:Tracer.nop ()) })
  in
  let obs = Obs.create () in
  let _, traced_s =
    timed (fun () -> Campaign.run { options with Campaign.obs = Some obs })
  in
  let events = Tracer.events obs.Obs.tracer in
  let n_events = List.length events in
  let overhead =
    if base_s > 0.0 then (traced_s -. base_s) /. base_s *. 100.0 else 0.0
  in
  Fmt.pr
    "recording overhead:   %.3fs untraced, %.3fs traced (%+.1f%%), %d events (%d dropped)@."
    base_s traced_s overhead n_events
    (Tracer.dropped obs.Obs.tracer);
  record "trace_s_untraced" (Jsonl.Float base_s);
  record "trace_s_traced" (Jsonl.Float traced_s);
  record "trace_overhead_pct" (Jsonl.Float overhead);
  record "trace_events" (Jsonl.Int n_events);
  record "trace_dropped" (Jsonl.Int (Tracer.dropped obs.Obs.tracer));
  let tree, build_s =
    timed (fun () ->
        Spantree.build ~dropped:(Tracer.dropped obs.Obs.tracer) events)
  in
  let profile, profile_s = timed (fun () -> Profile.of_tree tree) in
  Fmt.pr
    "analysis:             build %.4fs (%d spans, %d lanes), profile %.4fs (%d rows)@."
    build_s tree.Spantree.spans
    (List.length tree.Spantree.lanes)
    profile_s
    (List.length profile.Profile.rows);
  record "trace_build_s" (Jsonl.Float build_s);
  record "trace_spans" (Jsonl.Int tree.Spantree.spans);
  record "trace_profile_s" (Jsonl.Float profile_s);
  (* k-way merge on an even split of the ring, the shape Campaign's
     domain join hands it. *)
  let shards = 4 in
  let rings =
    List.init shards (fun d ->
        List.filteri (fun i _ -> i mod shards = d) events)
  in
  let merged, merge_s = timed (fun () -> Tracer.interleave rings) in
  Fmt.pr "interleave:           %d rings of ~%d events in %.4fs@." shards
    (n_events / max 1 shards) merge_s;
  record "trace_interleave_s" (Jsonl.Float merge_s);
  assert (List.length merged = n_events);
  let chrome, chrome_s =
    timed (fun () -> Jsonl.to_string (Spantree.to_chrome tree))
  in
  let folded, folded_s = timed (fun () -> Profile.folded tree) in
  Fmt.pr
    "exports:              chrome %d bytes in %.4fs, %d folded stacks in %.4fs@.@."
    (String.length chrome) chrome_s (List.length folded) folded_s;
  record "trace_chrome_bytes" (Jsonl.Int (String.length chrome));
  record "trace_chrome_s" (Jsonl.Float chrome_s);
  record "trace_folded_lines" (Jsonl.Int (List.length folded));
  record "trace_folded_s" (Jsonl.Float folded_s)

(* --- bechamel micro/macro benchmarks ------------------------------------ *)

let bench_corpus = 48

let make_benchmarks () =
  (* Shared fixtures, built once outside the timed closures. *)
  let options =
    { Campaign.default_options with Campaign.corpus_size = bench_corpus }
  in
  let prepared = Campaign.prepare options in
  let config = Config.v5_13 () in
  let profiler = Collect.create config in
  let prog = Syzlang.parse "r0 = open(\"/proc/net/ptype\")\nr1 = read(r0)" in
  let sender = Syzlang.parse "r0 = socket(3)" in
  let env = Env.create config in
  let kernel = State.boot config in
  let snap = State.snapshot kernel in
  let corpus_list = Corpus.generate ~seed:7 ~size:bench_corpus in
  let profiles = Dataflow.profile_corpus config Spec.default corpus_list in
  let map = Dataflow.build_map profiles in
  let runner = Runner.create env in
  let outcome = Runner.execute runner ~sender ~receiver:prog in
  [
    (* one Test.make per paper table *)
    Test.make ~name:"table2/5/6: campaign (DF-IA)"
      (Staged.stage (fun () ->
           ignore (Campaign.execute_prepared prepared : Campaign.t)));
    Test.make ~name:"table3: known-bug reproduction"
      (Staged.stage (fun () ->
           ignore (Known_bugs.reproduce_all () : Known_bugs.outcome list)));
    Test.make ~name:"table4: clustering DF-IA"
      (Staged.stage (fun () ->
           ignore
             (Cluster.run Cluster.Df_ia ~corpus_size:bench_corpus map
               : Cluster.result)));
    Test.make ~name:"table4: clustering DF-ST-2"
      (Staged.stage (fun () ->
           ignore
             (Cluster.run (Cluster.Df_st 2) ~corpus_size:bench_corpus map
               : Cluster.result)));
    (* pipeline-stage micro-benchmarks (section 6.5) *)
    Test.make ~name:"profile: one test program"
      (Staged.stage (fun () ->
           ignore
             (Collect.profile profiler ~role:Collect.Receiver prog
               : Collect.profile)));
    Test.make ~name:"execute: one test case (A+B)"
      (Staged.stage (fun () ->
           ignore (Runner.execute runner ~sender ~receiver:prog : Runner.outcome)));
    (let sup = Supervisor.create config in
     Test.make ~name:"execute: supervised, inert fault plane"
       (Staged.stage (fun () ->
            ignore (Supervisor.execute sup ~sender ~receiver:prog : Runner.status))));
    Test.make ~name:"kernel: snapshot restore"
      (Staged.stage (fun () -> State.restore kernel snap));
    Test.make ~name:"kernel: snapshot restore (full)"
      (Staged.stage (fun () -> State.restore ~full:true kernel snap));
    Test.make ~name:"trace: AST comparison"
      (Staged.stage (fun () ->
           ignore
             (Compare.diff_trees outcome.Runner.trace_a outcome.Runner.trace_b
               : Compare.diff list)));
    Test.make ~name:"corpus: generate 48 programs"
      (Staged.stage (fun () ->
           ignore
             (Corpus.generate ~seed:7 ~size:bench_corpus
               : Kit_abi.Program.t list)));
  ]

let run_benchmarks () =
  Fmt.pr "=============================================================@.";
  Fmt.pr " Bechamel timings (quota %.2fs per test)@." quota;
  Fmt.pr "=============================================================@.";
  let tests = make_benchmarks () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second quota)
      ~kde:None ~stabilize:false ()
  in
  let grouped = Test.make_grouped ~name:"kit" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let pp_time ppf ns =
    if Float.is_nan ns then Fmt.string ppf "n/a"
    else if ns > 1e9 then Fmt.pf ppf "%8.3f s " (ns /. 1e9)
    else if ns > 1e6 then Fmt.pf ppf "%8.3f ms" (ns /. 1e6)
    else if ns > 1e3 then Fmt.pf ppf "%8.3f us" (ns /. 1e3)
    else Fmt.pf ppf "%8.1f ns" ns
  in
  List.iter (fun (name, ns) -> Fmt.pr "%-42s %a@." name pp_time ns) rows

(* --- crash-isolated process pool ----------------------------------------
   What real process isolation costs over in-process domain sharding:
     1. spawn + Hello bootstrap + per-job pipe round-trips (same queue,
        same corpus, workers as processes instead of domains);
     2. crash recovery — a sabotaged worker SIGKILLed mid-run, its shard
        resharded over the survivors (the wall-clock price of one death
        on the same workload). Reports must be identical in all three
        schedules. *)

let print_pool_bench () =
  Fmt.pr "-- Crash-isolated pool: process vs domain sharding --@.";
  let corpus_size = getenv_int "KIT_BENCH_POOL_CORPUS" 96 in
  let procs = getenv_int "KIT_BENCH_POOL_PROCS" 4 in
  let options =
    { Campaign.default_options with Campaign.corpus_size; diagnose = false }
  in
  record "pool_corpus" (Jsonl.Int corpus_size);
  record "pool_procs" (Jsonl.Int procs);
  let base = Campaign.run options in
  let corpus = base.Campaign.corpus
  and generation = base.Campaign.generation in
  let cases = List.length generation.Cluster.reps in
  let in_process () =
    Distrib.execute ~domains:1 options corpus generation ~workers:procs
  in
  let pool ~sabotage () =
    Pool.execute
      { Pool.default_config with Pool.procs; sabotage }
      options corpus generation
  in
  (* Warm both paths once so allocator and code paths are hot. *)
  ignore (in_process () : Distrib.t);
  ignore (pool ~sabotage:Pool.no_sabotage () : Pool.outcome);
  let d, d_s = timed in_process in
  let p, p_s = timed (fun () -> pool ~sabotage:Pool.no_sabotage ()) in
  let kill = { Pool.no_sabotage with Pool.kill_after = [ (0, 2) ] } in
  let pk, pk_s = timed (fun () -> pool ~sabotage:kill ()) in
  let per_case = if cases > 0 then (p_s -. d_s) /. float_of_int cases else 0.0 in
  Fmt.pr "domain sharding:      %d workers, %d cases: %.3fs@." procs cases d_s;
  Fmt.pr
    "process pool:         %d procs,   %d cases: %.3fs (%.1f us/case \
     isolation overhead)@."
    procs cases p_s (per_case *. 1e6);
  Fmt.pr
    "pool + 1 SIGKILL:     %.3fs (%d resharded, %d respawns; recovery cost \
     %.3fs)@."
    pk_s pk.Pool.stats.Pool.resharded pk.Pool.stats.Pool.respawns
    (pk_s -. p_s);
  Fmt.pr "                      reports identical: %b@."
    (List.length d.Distrib.reports
     = List.length
         (List.filter_map
            (fun r -> r.Campaign.cr_report)
            p.Pool.results)
     && List.length d.Distrib.reports
        = List.length
            (List.filter_map
               (fun r -> r.Campaign.cr_report)
               pk.Pool.results));
  record "pool_cases" (Jsonl.Int cases);
  record "pool_s_domains" (Jsonl.Float d_s);
  record "pool_s_procs" (Jsonl.Float p_s);
  record "pool_overhead_us_per_case" (Jsonl.Float (per_case *. 1e6));
  record "pool_s_procs_sigkill" (Jsonl.Float pk_s);
  record "pool_sigkill_resharded" (Jsonl.Int pk.Pool.stats.Pool.resharded);
  Fmt.pr "@."

(* --- multi-tenant serve scheduler ---------------------------------------
   What the [kit serve] scheduler costs over driving the bare pool:
     1. scheduling overhead — the same two campaigns end to end (prepare,
        generate, execute), back to back on bare pools vs submitted
        together and drained through Sched. The baseline pays two pool
        spawns where the scheduler shares one — amortizing spawn across
        tenants is part of what serve buys — so the per-case delta is
        pure DRR/bookkeeping cost minus that saving;
     2. fairness — with 3:1 weights the heavy tenant's share of
        contended dispatches should sit at 0.75 (CI accepts +-10%);
     3. work stealing — dispatches that spent another tenant's stranded
        credit rather than idling a worker slot. *)

let print_serve_bench () =
  Fmt.pr "-- Multi-tenant serve: scheduler overhead / fairness / steals --@.";
  let corpus_size = getenv_int "KIT_BENCH_SERVE_CORPUS" 96 in
  let procs = getenv_int "KIT_BENCH_SERVE_PROCS" 4 in
  record "serve_corpus" (Jsonl.Int corpus_size);
  record "serve_procs" (Jsonl.Int procs);
  let spec name seed weight =
    { Proto.default_spec with
      Proto.sp_name = name;
      sp_seed = seed;
      sp_corpus_size = corpus_size;
      sp_weight = weight;
      sp_diagnose = false }
  in
  let specs = [ spec "heavy" 11 3; spec "light" 7 1 ] in
  let pool_cfg = { Pool.default_config with Pool.procs } in
  let run_bare sp =
    let options = Proto.options_of_spec sp in
    let prepared = Campaign.prepare options in
    let generation = Campaign.generate_prepared prepared in
    let o =
      Pool.execute pool_cfg options
        (Campaign.prepared_corpus prepared)
        generation
    in
    List.length o.Pool.results
  in
  let run_sched () =
    let cfg =
      { Sched.default_config with Sched.sc_pool = pool_cfg; sc_max_active = 2 }
    in
    let s = Sched.create cfg in
    Fun.protect ~finally:(fun () -> Sched.shutdown s) @@ fun () ->
    List.iter
      (fun sp ->
        match Sched.request s (Proto.Submit sp) with
        | Proto.Accepted _ -> ()
        | _ -> failwith "serve bench: submit rejected")
      specs;
    Sched.drain s;
    List.map Tenant.status (Sched.tenants s)
  in
  (* Warm both paths once so allocator and code paths are hot. *)
  ignore (run_bare (List.hd specs) : int);
  ignore (run_sched () : Proto.tenant_status list);
  let cases_per_spec, pool_s =
    timed (fun () -> List.map run_bare specs)
  in
  let cases = List.fold_left ( + ) 0 cases_per_spec in
  let statuses, sched_s = timed run_sched in
  let per_case =
    if cases > 0 then (sched_s -. pool_s) /. float_of_int cases else 0.0
  in
  Fmt.pr "bare pool x%d:        %d cases total: %.3fs (two pool spawns)@."
    (List.length specs) cases pool_s;
  Fmt.pr
    "sched, shared pool:   %d cases total: %.3fs (%+.1f us/case scheduler \
     overhead)@."
    cases sched_s (per_case *. 1e6);
  let dispatched =
    List.fold_left (fun a st -> a + st.Proto.ts_dispatched) 0 statuses
  and contended =
    List.fold_left (fun a st -> a + st.Proto.ts_contended) 0 statuses
  and steals =
    List.fold_left (fun a st -> a + st.Proto.ts_steals) 0 statuses
  in
  let heavy_contended =
    match List.find_opt (fun st -> st.Proto.ts_name = "heavy") statuses with
    | Some st -> st.Proto.ts_contended
    | None -> 0
  in
  let heavy_share =
    if contended > 0 then
      float_of_int heavy_contended /. float_of_int contended
    else 0.75
  in
  let fairness_err = Float.abs (heavy_share -. 0.75) in
  let steal_rate =
    if dispatched > 0 then float_of_int steals /. float_of_int dispatched
    else 0.0
  in
  Fmt.pr
    "fairness (3:1):       heavy share %.3f of %d contended dispatches \
     (target 0.750, err %.3f)@."
    heavy_share contended fairness_err;
  Fmt.pr "work stealing:        %d of %d dispatches stolen (%.1f%%)@." steals
    dispatched (100.0 *. steal_rate);
  Fmt.pr "                      every tenant finished with reports: %b@."
    (List.for_all
       (fun st -> st.Proto.ts_state = "finished" && st.Proto.ts_reports >= 0)
       statuses);
  record "serve_cases" (Jsonl.Int cases);
  record "serve_s_pool" (Jsonl.Float pool_s);
  record "serve_s_sched" (Jsonl.Float sched_s);
  record "serve_overhead_us_per_case" (Jsonl.Float (per_case *. 1e6));
  record "serve_dispatched" (Jsonl.Int dispatched);
  record "serve_steals" (Jsonl.Int steals);
  record "serve_steal_rate" (Jsonl.Float steal_rate);
  record "serve_fairness_err" (Jsonl.Float fairness_err);
  Fmt.pr "@."

(* --- compact representations -------------------------------------------
   The packed hot-path representations against the naive baselines they
   replaced, as ops/sec on the same inputs:
     1. trace compare — diff_trees with the content-hash short-circuit
        vs a structural walk without it, on two structurally identical
        traces (the overwhelmingly common case: run A agrees with run B);
     2. flow intersection — Bitset address universes vs Set.Make(Int)
        for writer/reader overlap counting;
     3. fingerprints — the streaming FNV cache key vs MD5 of the
        marshalled testcase, on real DF representatives. *)

module IntSet = Set.Make (Int)

(* The pre-packing diff walk: Algorithm 1 with no hash and no physical
   equality, exactly what diff_trees cost before the short-circuit. *)
let naive_diff_count ta tb =
  let rec cmp (ta : Ast.t) (tb : Ast.t) acc =
    if not (ta.Ast.det && tb.Ast.det) then acc
    else if
      (not (String.equal ta.Ast.value tb.Ast.value))
      || List.length ta.Ast.children <> List.length tb.Ast.children
    then acc + 1
    else List.fold_left2 (fun acc ca cb -> cmp ca cb acc) acc
        ta.Ast.children tb.Ast.children
  in
  cmp ta tb 0

let ops_per_sec iters f =
  ignore (f ());
  let _, s = timed (fun () -> for _ = 1 to iters do ignore (f ()) done) in
  if s > 0.0 then float_of_int iters /. s else float_of_int iters

let print_repr_bench () =
  Fmt.pr "-- Compact representations: compare / intersect / fingerprint --@.";
  (* 1. trace compare: two separately built, structurally equal traces
     of a realistic shape (64 calls x 8 result fields, ~580 nodes). *)
  let mk_trace () =
    let lines =
      List.init 64 (fun i ->
          let args =
            List.init 8 (fun j ->
                Ast.leaf (Printf.sprintf "arg%d" j)
                  (string_of_int ((i * 8) + j)))
          in
          Ast.node (Printf.sprintf "call%d:open" i) args)
    in
    Ast.node "trace" lines
  in
  let ta = mk_trace () and tb = mk_trace () in
  assert (List.length (Compare.diff_trees ta tb) = naive_diff_count ta tb);
  let iters = getenv_int "KIT_BENCH_REPR_ITERS" 20_000 in
  let packed_ops =
    ops_per_sec iters (fun () -> Compare.diff_trees ta tb)
  in
  let naive_ops = ops_per_sec iters (fun () -> naive_diff_count ta tb) in
  let cmp_speedup = packed_ops /. naive_ops in
  Fmt.pr
    "trace compare:        %.0f ops/s packed vs %.0f ops/s naive on %d \
     nodes (%.1fx)@."
    packed_ops naive_ops (Ast.size ta) cmp_speedup;
  record "repr_compare_packed_ops" (Jsonl.Float packed_ops);
  record "repr_compare_naive_ops" (Jsonl.Float naive_ops);
  record "repr_compare_speedup" (Jsonl.Float cmp_speedup);
  (* 2. flow intersection: writer/reader address universes the size a
     few-hundred-program corpus produces, counted per overlap query. *)
  let wmembers = List.init 4096 (fun i -> 0x1000 + (3 * i))
  and rmembers = List.init 4096 (fun i -> 0x1000 + (5 * i)) in
  let wbits = Bitset.create 0x8000 and rbits = Bitset.create 0x8000 in
  List.iter (Bitset.add wbits) wmembers;
  List.iter (Bitset.add rbits) rmembers;
  let wset = IntSet.of_list wmembers and rset = IntSet.of_list rmembers in
  assert (Bitset.inter_count wbits rbits
          = IntSet.cardinal (IntSet.inter wset rset));
  let bits_ops =
    ops_per_sec iters (fun () -> Bitset.inter_count wbits rbits)
  in
  let set_ops =
    ops_per_sec iters (fun () -> IntSet.cardinal (IntSet.inter wset rset))
  in
  let flow_speedup = bits_ops /. set_ops in
  Fmt.pr
    "flow intersection:    %.0f ops/s bitset vs %.0f ops/s int set on \
     2x%d addresses (%.1fx)@."
    bits_ops set_ops (List.length wmembers) flow_speedup;
  record "repr_flow_packed_ops" (Jsonl.Float bits_ops);
  record "repr_flow_naive_ops" (Jsonl.Float set_ops);
  record "repr_flow_speedup" (Jsonl.Float flow_speedup);
  (* 3. fingerprints on the DF representatives of a real corpus. *)
  let corpus_size = getenv_int "KIT_BENCH_REPR_CORPUS" 96 in
  let options = { Campaign.default_options with Campaign.corpus_size } in
  let generation = Campaign.generate_prepared (Campaign.prepare options) in
  let reps = Array.of_list generation.Cluster.reps in
  let nreps = Array.length reps in
  let fp_iters = max 1 (iters / max 1 nreps) in
  let fnv_ops =
    ops_per_sec fp_iters (fun () ->
        Array.iter (fun tc -> ignore (Tenant.fingerprint tc)) reps)
  in
  let md5_ops =
    ops_per_sec fp_iters (fun () ->
        Array.iter (fun tc -> ignore (Tenant.fingerprint_legacy tc)) reps)
  in
  let fp_speedup = fnv_ops /. md5_ops in
  Fmt.pr
    "fingerprint:          %.0f sweeps/s fnv vs %.0f sweeps/s md5+marshal \
     over %d representatives (%.1fx)@."
    fnv_ops md5_ops nreps fp_speedup;
  record "repr_fp_reps" (Jsonl.Int nreps);
  record "repr_fp_fnv_ops" (Jsonl.Float fnv_ops);
  record "repr_fp_md5_ops" (Jsonl.Float md5_ops);
  record "repr_fp_speedup" (Jsonl.Float fp_speedup);
  let rss = Rss.peak_kb () in
  Fmt.pr "peak rss:             %d kB (VmHWM)@." rss;
  record "repr_peak_rss_kb" (Jsonl.Int rss);
  Fmt.pr "@."

(* -- interleaved schedule search ------------------------------------------ *)

(* The scheduler section (KIT_BENCH_ONLY_SCHED): what deterministic
   interleaving costs and what POR saves.
     1. per-execution overhead — run_interleaved under the Sequential
        schedule vs run_pair over the same case (effect-handler tax);
     2. a full campaign on the race-window kernel with --schedules N vs
        the same campaign sequential-only: POR prune ratio, schedule
        executions per second, and the race-window bugs witnessed. *)
let print_sched_bench () =
  Fmt.pr "-- Interleaved schedule search: overhead / POR / discovery --@.";
  let corpus_size = getenv_int "KIT_BENCH_SCHED_CORPUS" 96 in
  let schedules = getenv_int "KIT_BENCH_SCHED_N" 128 in
  let iters = getenv_int "KIT_BENCH_SCHED_ITERS" 400 in
  record "sched_corpus" (Jsonl.Int corpus_size);
  record "sched_n" (Jsonl.Int schedules);
  (* 1. effect-handler tax on the sequential schedule *)
  let env = Env.create (Config.v5_13_rw ()) in
  let runner = Runner.create env in
  let sender = Syzlang.parse "r0 = socket(1)\nr1 = get_cookie(r0)" in
  let receiver =
    Syzlang.parse "r0 = open(\"/proc/net/sockstat\")\nr1 = read(r0)"
  in
  let time_loop f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do f () done;
    Unix.gettimeofday () -. t0
  in
  let pair_s =
    time_loop (fun () ->
        ignore (Runner.run_pair runner ~base:env.Env.base0 sender receiver))
  in
  let inter_s =
    time_loop (fun () ->
        ignore
          (Runner.run_interleaved runner ~schedule:Kit_kernel.Sched.Sequential
             ~base:env.Env.base0 sender receiver))
  in
  let tax = inter_s /. pair_s in
  Fmt.pr
    "interleave overhead:  %.1f us/exec plain vs %.1f us/exec scheduled \
     (%.2fx, %d iters)@."
    (1e6 *. pair_s /. float_of_int iters)
    (1e6 *. inter_s /. float_of_int iters)
    tax iters;
  record "sched_s_run_pair" (Jsonl.Float pair_s);
  record "sched_s_interleaved" (Jsonl.Float inter_s);
  record "sched_overhead_ratio" (Jsonl.Float tax);
  (* 2. campaign-level search cost and yield *)
  let options =
    { Campaign.default_options with
      Campaign.config = Config.v5_13_rw ();
      corpus_size;
      seed = 3;
      diagnose = false }
  in
  let c_seq, seq_s = timed (fun () -> Campaign.run options) in
  let c_sched, sched_s =
    timed (fun () -> Campaign.run { options with Campaign.schedules })
  in
  let s = c_sched.Campaign.sched in
  let candidates = s.Campaign.sched_executed + s.Campaign.sched_pruned in
  let prune_ratio =
    if candidates = 0 then 0.0
    else float_of_int s.Campaign.sched_pruned /. float_of_int candidates
  in
  let search_s = Float.max 1e-9 (sched_s -. seq_s) in
  let sched_per_s = float_of_int s.Campaign.sched_executed /. search_s in
  let found = Oracle.race_bugs_found c_sched.Campaign.concurrent in
  Fmt.pr
    "campaign:             %.2fs sequential vs %.2fs with %d seeds/case \
     (%.1fx)@."
    seq_s sched_s schedules (sched_s /. seq_s);
  Fmt.pr
    "POR:                  %d candidate seeds, %d executed, %d pruned \
     (%.1f%% pruned)@."
    candidates s.Campaign.sched_executed s.Campaign.sched_pruned
    (100.0 *. prune_ratio);
  Fmt.pr "search throughput:    %.0f schedules/s@." sched_per_s;
  Fmt.pr "race-window bugs:     %d/%d witnessed (%s)@."
    (List.length found)
    (List.length Bugs.race_bugs)
    (String.concat ", " (List.map Bugs.to_string found));
  if c_seq.Campaign.concurrent <> [] then
    failwith "sched bench: sequential campaign produced concurrent reports";
  record "sched_campaign_s_sequential" (Jsonl.Float seq_s);
  record "sched_campaign_s_searched" (Jsonl.Float sched_s);
  record "sched_campaign_overhead" (Jsonl.Float (sched_s /. seq_s));
  record "sched_candidates" (Jsonl.Int candidates);
  record "sched_executed" (Jsonl.Int s.Campaign.sched_executed);
  record "sched_pruned" (Jsonl.Int s.Campaign.sched_pruned);
  record "sched_prune_ratio" (Jsonl.Float prune_ratio);
  record "sched_schedules_per_s" (Jsonl.Float sched_per_s);
  record "sched_concurrent_reports"
    (Jsonl.Int (List.length c_sched.Campaign.concurrent));
  record "sched_race_bugs_found" (Jsonl.Int (List.length found));
  record "sched_race_bugs_total" (Jsonl.Int (List.length Bugs.race_bugs));
  let rss = Rss.peak_kb () in
  Fmt.pr "peak rss:             %d kB (VmHWM)@." rss;
  record "sched_peak_rss_kb" (Jsonl.Int rss);
  Fmt.pr "@."

(* Coverage ledger: marking overhead on the execution hot path must be
   noise (the ledger is always on), and the campaign-level summary must
   land balanced. The marking pass is measured in isolation over the
   corpus's real access stream — the same stream the campaign feeds the
   ledger — and compared to the campaign's own wall time. *)
let print_cov_bench () =
  Fmt.pr "-- Coverage ledger: marking overhead / gap census --@.";
  let corpus_size = getenv_int "KIT_BENCH_COV_CORPUS" 96 in
  let iters = getenv_int "KIT_BENCH_COV_ITERS" 50 in
  record "cov_corpus" (Jsonl.Int corpus_size);
  let options =
    { Campaign.default_options with
      Campaign.corpus_size; seed = 7; diagnose = false }
  in
  let c, campaign_s = timed (fun () -> Campaign.run options) in
  let s = Coverage.summary c.Campaign.coverage in
  if not (Campaign.attrition_balanced c.Campaign.attrition) then
    failwith "cov bench: attrition does not balance";
  (* Isolated marking pass over the same access stream. *)
  let spec = options.Campaign.spec in
  let corpus = Corpus.generate ~seed:options.Campaign.seed ~size:corpus_size in
  let profiles = Dataflow.profile_corpus options.Campaign.config spec corpus in
  let map = Dataflow.build_map profiles in
  let writers = Accessmap.writer_addresses map in
  let readers = Accessmap.reader_addresses map in
  let universe =
    List.filter_map
      (fun (v : Kit_kernel.Heap.varinfo) ->
        if v.Kit_kernel.Heap.v_instrumented
           && Spec.var_protected spec v.Kit_kernel.Heap.v_name
        then Some (v.Kit_kernel.Heap.v_name, v.Kit_kernel.Heap.v_addr)
        else None)
      profiles.Dataflow.vars
  in
  let mark_pass () =
    let cov = Coverage.create universe in
    Array.iter
      (List.iter (fun (a : Stackrec.access) ->
           Coverage.mark_touched cov ~addr:a.Stackrec.addr))
      profiles.Dataflow.accesses;
    List.iter (fun addr -> Coverage.mark_written cov ~addr) writers;
    List.iter (fun addr -> Coverage.mark_read cov ~addr) readers;
    cov
  in
  let _, marks_s = timed (fun () -> for _ = 1 to iters do ignore (mark_pass ()) done) in
  let mark_s = marks_s /. float_of_int iters in
  let overhead = mark_s /. campaign_s in
  Fmt.pr "universe:             %d protected vars, %d paired, %d gaps, \
          %d attributed@."
    s.Coverage.sum_vars s.Coverage.sum_paired s.Coverage.sum_gaps
    s.Coverage.sum_attributed;
  Fmt.pr "campaign:             %.2fs (corpus %d, ledger always on)@."
    campaign_s corpus_size;
  Fmt.pr "marking pass:         %.2f ms (%d iters; %.2f%% of campaign)@."
    (1e3 *. mark_s) iters (100.0 *. overhead);
  record "cov_vars" (Jsonl.Int s.Coverage.sum_vars);
  record "cov_paired" (Jsonl.Int s.Coverage.sum_paired);
  record "cov_gaps" (Jsonl.Int s.Coverage.sum_gaps);
  record "cov_attributed" (Jsonl.Int s.Coverage.sum_attributed);
  record "cov_campaign_s" (Jsonl.Float campaign_s);
  record "cov_mark_s" (Jsonl.Float mark_s);
  record "cov_overhead_ratio" (Jsonl.Float overhead);
  record "cov_funnel_generated"
    (Jsonl.Int c.Campaign.attrition.Campaign.at_generated);
  record "cov_funnel_reported"
    (Jsonl.Int c.Campaign.attrition.Campaign.at_reported);
  let rss = Rss.peak_kb () in
  Fmt.pr "peak rss:             %d kB (VmHWM)@." rss;
  record "cov_peak_rss_kb" (Jsonl.Int rss);
  Fmt.pr "@."

(* Pool workers re-execute this binary; the trampoline must run before
   the bench dispatch below. No-op in the parent. *)
let () = Pool.worker_entry ()

let () =
  if Sys.getenv_opt "KIT_BENCH_ONLY_EXEC" <> None then begin
    print_exec_hotpath ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_PIPELINE" <> None then begin
    print_pipeline_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_TRACE" <> None then begin
    print_trace_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_POOL" <> None then begin
    print_pool_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_SERVE" <> None then begin
    print_serve_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_REPR" <> None then begin
    print_repr_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_SCHED" <> None then begin
    print_sched_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else if Sys.getenv_opt "KIT_BENCH_ONLY_COV" <> None then begin
    print_cov_bench ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
  else begin
    print_tables ();
    print_jump_label_ablation ();
    print_spec_ablation ();
    print_bounds_ablation ();
    print_supervision_overhead ();
    print_observability_overhead ();
    print_exec_hotpath ();
    print_pipeline_bench ();
    print_trace_bench ();
    print_pool_bench ();
    print_serve_bench ();
    print_repr_bench ();
    print_sched_bench ();
    print_cov_bench ();
    run_benchmarks ();
    write_bench_json ();
    Fmt.pr "done.@."
  end
