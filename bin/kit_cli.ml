(* The kit command-line interface.

     kit campaign    run a full testing campaign and summarise reports
     kit tables      regenerate the paper's evaluation tables (2, 4, 5, 6)
     kit known-bugs  reproduce the documented bugs of Table 3
     kit run         execute one sender/receiver test case and explain it
     kit corpus      print a generated program corpus

   All commands are deterministic for a given --seed. *)

module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Tables = Kit_core.Tables
module Oracle = Kit_core.Oracle
module Known_bugs = Kit_core.Known_bugs
module Cluster = Kit_gen.Cluster
module Corpus = Kit_abi.Corpus
module Syzlang = Kit_abi.Syzlang
module Program = Kit_abi.Program
module Config = Kit_kernel.Config
module Bugs = Kit_kernel.Bugs

open Cmdliner

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.")

let corpus_size_arg =
  Arg.(
    value & opt int 320
    & info [ "corpus-size" ] ~doc:"Number of corpus test programs.")

let strategy_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "df-ia" -> Ok Cluster.Df_ia
    | "df-st-1" -> Ok (Cluster.Df_st 1)
    | "df-st-2" -> Ok (Cluster.Df_st 2)
    | other -> (
      match int_of_string_opt other with
      | Some n when n > 0 -> Ok (Cluster.Rand n)
      | Some _ | None ->
        Error (`Msg "expected df-ia, df-st-1, df-st-2 or a RAND budget"))
  in
  let print ppf s = Fmt.string ppf (Cluster.strategy_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Cluster.Df_ia
    & info [ "strategy" ] ~doc:"Generation strategy: df-ia, df-st-1, df-st-2, or an integer RAND budget.")

let options ~seed ~corpus_size ~strategy =
  { Campaign.default_options with Campaign.seed; corpus_size; strategy }

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Render the AGG-RS groups.")

let cmd_campaign =
  let run seed corpus_size strategy verbose =
    let c = Campaign.run (options ~seed ~corpus_size ~strategy) in
    let found = Oracle.new_bugs_found c.Campaign.keyed in
    Fmt.pr "strategy %s: %d clusters, %d reports after filtering@."
      (Cluster.strategy_name c.Campaign.generation.Cluster.strategy)
      c.Campaign.generation.Cluster.clusters
      (List.length c.Campaign.reports);
    Fmt.pr "%s@." (Tables.table5 c);
    Fmt.pr "new bugs found (%d/9): %a@." (List.length found)
      (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
      found;
    Fmt.pr "%s@." (Tables.performance c);
    if verbose then begin
      Fmt.pr "@.%s@." (Kit_report.Render.groups c.Campaign.agg_rs)
    end
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run a full testing campaign")
    Term.(const run $ seed_arg $ corpus_size_arg $ strategy_arg $ verbose_arg)

let cmd_distrib =
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker environments.")
  in
  let run seed corpus_size strategy workers =
    let opts = options ~seed ~corpus_size ~strategy in
    let single = Campaign.run opts in
    let d =
      Distrib.execute opts single.Campaign.corpus single.Campaign.generation
        ~workers
    in
    Fmt.pr "%a@." Distrib.pp d;
    List.iter
      (fun (w : Distrib.worker_result) ->
        Fmt.pr "worker %d: %d test cases, %d executions, %d reports@."
          w.Distrib.worker w.Distrib.assigned w.Distrib.executions
          (List.length w.Distrib.reports))
      d.Distrib.workers;
    Fmt.pr "single-node check: %d reports (%s)@."
      (List.length single.Campaign.reports)
      (if List.length single.Campaign.reports = List.length d.Distrib.reports
       then "identical" else "MISMATCH")
  in
  Cmd.v
    (Cmd.info "distrib" ~doc:"Run a campaign sharded over worker environments")
    Term.(const run $ seed_arg $ corpus_size_arg $ strategy_arg $ workers_arg)

let cmd_tables =
  let run seed corpus_size =
    let prepared =
      Campaign.prepare (options ~seed ~corpus_size ~strategy:Cluster.Df_ia)
    in
    let _, t4, (df_ia, _, _, _) = Tables.table4 prepared in
    let _, t2 = Tables.table2 df_ia in
    Fmt.pr "== Table 2: bugs found ==@.%s@." t2;
    let _, t3 = Tables.table3 () in
    Fmt.pr "== Table 3: known bugs ==@.%s@." t3;
    Fmt.pr "== Table 4: generation strategies ==@.%s@." t4;
    Fmt.pr "== Table 5: report filtering ==@.%s@.@." (Tables.table5 df_ia);
    let _, t6 = Tables.table6 df_ia in
    Fmt.pr "== Table 6: report aggregation ==@.%s@." t6;
    Fmt.pr "== Performance (sec. 6.5) ==@.%s@." (Tables.performance df_ia)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's evaluation tables")
    Term.(const run $ seed_arg $ corpus_size_arg)

let cmd_known_bugs =
  let run () =
    let outcomes, rendered = Tables.table3 () in
    Fmt.pr "%s@." rendered;
    Fmt.pr "detected %d/7 documented bugs (paper: 5/7)@."
      (Known_bugs.detected_count outcomes)
  in
  Cmd.v
    (Cmd.info "known-bugs" ~doc:"Reproduce the documented bugs of Table 3")
    Term.(const run $ const ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse a user-supplied program file, turning parse failures into a
   clean CLI error instead of an uncaught exception. *)
let parse_program_file path =
  try Syzlang.parse (read_file path)
  with Syzlang.Parse_error msg ->
    Fmt.epr "kit: cannot parse %s: %s@." path msg;
    exit 2

let cmd_run =
  let sender_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "sender" ] ~doc:"Sender program file (syzlang-style).")
  in
  let receiver_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "receiver" ] ~doc:"Receiver program file (syzlang-style).")
  in
  let version_arg =
    Arg.(
      value & opt string "5.13"
      & info [ "kernel" ] ~doc:"Model kernel release to test.")
  in
  let bounds_arg =
    Arg.(value & flag
         & info [ "bounds" ]
             ~doc:"Use the bounds-based detector instead of trace masking.")
  in
  let run sender_file receiver_file version bounds =
    let sender = parse_program_file sender_file in
    let receiver = parse_program_file receiver_file in
    let config = Config.make version in
    let env = Kit_exec.Env.create config in
    let runner = Kit_exec.Runner.create env in
    if bounds then begin
      let violations =
        Kit_exec.Runner.execute_bounds runner ~sender ~receiver
      in
      if violations = [] then Fmt.pr "no bound violations@."
      else
        List.iter
          (fun v -> Fmt.pr "VIOLATION %a@." Kit_trace.Bounds.pp_violation v)
          violations
    end
    else begin
      let outcome = Kit_exec.Runner.execute runner ~sender ~receiver in
      if outcome.Kit_exec.Runner.masked_diffs = [] then
        Fmt.pr "no functional interference detected@."
      else begin
        Fmt.pr "functional interference on receiver calls [%a]:@."
          (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
          outcome.Kit_exec.Runner.interfered;
        List.iter
          (fun d -> Fmt.pr "  %a@." Kit_trace.Compare.pp_diff d)
          outcome.Kit_exec.Runner.masked_diffs
      end
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute one sender/receiver test case")
    Term.(const run $ sender_arg $ receiver_arg $ version_arg $ bounds_arg)

let cmd_profile =
  let program_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "program" ] ~doc:"Test program file (syzlang-style).")
  in
  let run program_file =
    let prog = parse_program_file program_file in
    let profiler = Kit_profile.Collect.create (Config.v5_13 ()) in
    let profile =
      Kit_profile.Collect.profile profiler ~role:Kit_profile.Collect.Receiver
        prog
    in
    Fmt.pr "%d attributed kernel memory accesses:@."
      (List.length profile.Kit_profile.Collect.accesses);
    List.iter
      (fun (a : Kit_profile.Stackrec.access) ->
        Fmt.pr "  sys#%d %s addr=0x%x ip=0x%x stack=[%s]@."
          a.Kit_profile.Stackrec.sys_index
          (Kit_kernel.Kevent.rw_to_string a.Kit_profile.Stackrec.rw)
          a.Kit_profile.Stackrec.addr a.Kit_profile.Stackrec.ip
          (String.concat " < "
             (List.map Kit_kernel.Kfun.name a.Kit_profile.Stackrec.stack)))
      profile.Kit_profile.Collect.accesses
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile one test program's kernel memory footprint")
    Term.(const run $ program_arg)

let cmd_corpus =
  let size_arg =
    Arg.(value & opt int 16 & info [ "size" ] ~doc:"Corpus size.")
  in
  let run seed size =
    let corpus = Corpus.generate ~seed ~size in
    List.iteri
      (fun i prog -> Fmt.pr "# program %d@.%s@." i (Program.to_string prog))
      corpus
  in
  Cmd.v (Cmd.info "corpus" ~doc:"Print a generated program corpus")
    Term.(const run $ seed_arg $ size_arg)

let main =
  Cmd.group
    (Cmd.info "kit" ~version:"1.0.0"
       ~doc:"Functional interference testing for OS-level virtualization")
    [ cmd_campaign; cmd_distrib; cmd_tables; cmd_known_bugs; cmd_run;
      cmd_profile; cmd_corpus ]

let () = exit (Cmd.eval main)
