(* The kit command-line interface.

     kit campaign    run a full testing campaign and summarise reports
     kit grow        streaming campaign + delta campaign on a grown corpus
     kit distrib     run a campaign sharded over worker environments
     kit pool        run the execute phase on crash-isolated worker
                     processes (real Unix processes, heartbeats,
                     respawns, reshard-on-death)
     kit serve       multi-tenant campaign daemon: concurrent
                     submissions share one worker pool under weighted
                     deficit-round-robin scheduling, with per-tenant
                     checkpoints and --resume
     kit submit      submit a campaign to a running daemon
     kit status      show the daemon's pool and tenant state
     kit results     print a finished tenant's deterministic summary
     kit cancel      cancel a pending or active tenant
     kit extend      grow a finished tenant's corpus (delta campaign)
     kit tables      regenerate the paper's evaluation tables (2, 4, 5, 6)
     kit known-bugs  reproduce the documented bugs of Table 3
     kit run         execute one sender/receiver test case and explain it
     kit corpus      print a generated program corpus
     kit stats       summarise a telemetry JSONL file
     kit trace       analyse a trace export: span tree, profile,
                     critical path, Chrome/flamegraph output

   All commands are deterministic for a given --seed, including the
   injected fault schedules. campaign, distrib and run accept
   --metrics FILE / --trace FILE to export campaign telemetry
   (observability plane, lib/obs); kit stats renders such a file.

   Exit codes (for CI gating):
     0  clean run, no interference reports
     1  interference reports found
     2  quarantined crashers (test cases that kept killing the kernel)
     3  internal error *)

module Campaign = Kit_core.Campaign
module Distrib = Kit_core.Distrib
module Tables = Kit_core.Tables
module Oracle = Kit_core.Oracle
module Known_bugs = Kit_core.Known_bugs
module Cluster = Kit_gen.Cluster
module Corpus = Kit_abi.Corpus
module Syzlang = Kit_abi.Syzlang
module Program = Kit_abi.Program
module Config = Kit_kernel.Config
module Fault = Kit_kernel.Fault
module Bugs = Kit_kernel.Bugs
module Supervisor = Kit_exec.Supervisor
module Pool = Kit_serve.Pool
module Proto = Kit_serve.Proto
module Sched = Kit_serve.Sched
module Obs = Kit_obs.Obs
module Metrics = Kit_obs.Metrics
module Tracer = Kit_obs.Tracer
module Export = Kit_obs.Export
module Render = Kit_obs.Render
module Jsonl = Kit_obs.Jsonl
module Coverage = Kit_obs.Coverage
module Spantree = Kit_obs.Spantree
module Profile = Kit_obs.Profile

open Cmdliner

let exit_clean = 0
let exit_reports = 1
let exit_quarantined = 2
let exit_internal = 3

(* Run a command body, mapping uncaught exceptions to exit code 3. *)
let guarded f =
  try f ()
  with
  | Supervisor.Gave_up msg ->
    Fmt.epr "kit: gave up: %s@." msg;
    exit_internal
  | Distrib.All_workers_dead unfinished ->
    Fmt.epr "kit: every worker died; %d test case(s) unfinished@."
      (List.length unfinished);
    exit_internal
  | Pool.Aborted { unfinished; stats } ->
    Fmt.epr
      "kit: pool aborted: %d unfinished case(s) after %d death(s) and %d \
       respawn(s)%s@."
      (List.length unfinished) stats.Pool.deaths stats.Pool.respawns
      " (completed shards were checkpointed if --checkpoint was given; \
       rerun with --resume)";
    exit_internal
  | Sched.Dead_pool ->
    Fmt.epr
      "kit: every pool worker died with tenant work remaining; tenant state \
       was checkpointed — restart with --resume@.";
    exit_internal
  | e ->
    Fmt.epr "kit: internal error: %s@." (Printexc.to_string e);
    exit_internal

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.")

let corpus_size_arg =
  Arg.(
    value & opt int 320
    & info [ "corpus-size" ] ~doc:"Number of corpus test programs.")

let strategy_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "df-ia" -> Ok Cluster.Df_ia
    | "df-st-1" -> Ok (Cluster.Df_st 1)
    | "df-st-2" -> Ok (Cluster.Df_st 2)
    | other -> (
      match int_of_string_opt other with
      | Some n when n > 0 -> Ok (Cluster.Rand n)
      | Some _ | None ->
        Error (`Msg "expected df-ia, df-st-1, df-st-2 or a RAND budget"))
  in
  let print ppf s = Fmt.string ppf (Cluster.strategy_name s) in
  Arg.(
    value
    & opt (conv (parse, print)) Cluster.Df_ia
    & info [ "strategy" ] ~doc:"Generation strategy: df-ia, df-st-1, df-st-2, or an integer RAND budget.")

(* -- supervision / fault-injection options ------------------------------- *)

let faults_arg =
  let parse s = Result.map_error (fun e -> `Msg e) (Fault.parse_schedule s) in
  let print ppf s = Fmt.string ppf (Fault.schedule_to_string s) in
  Arg.(
    value
    & opt (conv (parse, print)) []
    & info [ "faults" ]
        ~doc:
          "Fault schedule: comma-separated $(b,panic:SYSNO[:K]), \
           $(b,hang:SYSNO[:K]), $(b,boot[:K]), $(b,snap[:K]) where K is an \
           occurrence count (default 1) or $(b,perm).")

let fault_intensity_arg =
  Arg.(
    value & opt int 0
    & info [ "fault-intensity" ]
        ~doc:
          "Arm N additional transient faults drawn deterministically from \
           --seed (demo of the supervised runtime).")

let fuel_arg =
  Arg.(
    value
    & opt int Campaign.default_options.Campaign.fuel
    & info [ "fuel" ]
        ~doc:"Per-execution step budget; an execution exceeding it is hung.")

let max_retries_arg =
  Arg.(
    value
    & opt int Campaign.default_options.Campaign.max_retries
    & info [ "max-retries" ]
        ~doc:"Supervisor retries per test case before quarantining it.")

let procs_arg =
  Arg.(
    value & opt int 1
    & info [ "procs" ]
        ~doc:
          "Run the execute phase on N crash-isolated worker processes \
           (real Unix processes driven over pipes; see $(b,kit pool)). \
           Reports, funnel and quarantine are identical for any value, \
           even under worker crashes; only wall-clock time changes.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ]
        ~doc:
          "Run the execute phase on N OCaml domains (true multicore). \
           Reports, funnel and quarantine are identical for any value; \
           only wall-clock time changes.")

let schedules_arg =
  Arg.(
    value & opt int 1
    & info [ "schedules" ]
        ~doc:
          "Search N interleaved schedule seeds per completed test case \
           (POR-pruned; one representative per equivalence class \
           executes). Sequentially-invisible race-window divergences \
           become concurrent reports carrying their reproducing seeds. \
           1 (the default) disables the search; sequential results are \
           unchanged for any value.")

let race_bugs_arg =
  Arg.(
    value & flag
    & info [ "race-bugs" ]
        ~doc:
          "Test the 5.13-rw kernel configuration: 5.13 plus the seeded \
           race-window bugs, which only interleaved schedules \
           ($(b,--schedules) > 1) can expose.")

let no_baseline_cache_arg =
  Arg.(
    value & flag
    & info [ "no-baseline-cache" ]
        ~doc:
          "Disable the per-receiver baseline-trace cache (every test case \
           re-executes the receiver solo). Never changes results; useful \
           for benchmarking the memoization win.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:"Checkpoint the execute phase to $(docv) as the campaign runs.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 64
    & info [ "checkpoint-every" ]
        ~doc:"Cluster representatives between checkpoints.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:"Resume from the --checkpoint file if it exists.")

(* -- observability options ----------------------------------------------- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export telemetry (metrics + trace events) to $(docv) as JSONL; \
           render it with $(b,kit stats).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Export trace events (phase and execution spans) to $(docv) as \
              JSONL.")

(* Observability is off unless requested: --metrics/--trace build a
   recording bundle and enable the global default registry, so the
   kernel's per-sysno dispatch counters are collected too. *)
let obs_of_flags ~metrics_file ~trace_file =
  match (metrics_file, trace_file) with
  | None, None -> None
  | _ ->
    Metrics.set_enabled Metrics.default true;
    Some (Obs.create ())

(* CLI exports carry wall-clock timings (volatile metrics, per-event
   timestamps): the deterministic subset is what the test suite golden-
   tests; a user reading `kit stats` wants real durations. *)
let export_obs obs ~meta ~metrics_file ~trace_file =
  match obs with
  | None -> ()
  | Some (obs : Obs.t) ->
    let events = Tracer.events obs.Obs.tracer in
    let dropped = Tracer.dropped obs.Obs.tracer in
    (match metrics_file with
    | None -> ()
    | Some path ->
      let snap =
        Metrics.merge
          [ Obs.snapshot ~volatile:true obs;
            Metrics.snapshot ~volatile:true Metrics.default ]
      in
      Export.write_file path
        (Export.lines ~wall:true ~meta ~events ~dropped snap);
      Fmt.pr "telemetry: %s@." path);
    (match trace_file with
    | None -> ()
    | Some path ->
      Export.write_file path
        (Export.lines ~wall:true ~meta ~events ~dropped []);
      Fmt.pr "trace: %s@." path)

let options ?(schedules = 1) ?(race_bugs = false) ~seed ~corpus_size ~strategy
    ~faults ~fault_intensity ~fuel ~max_retries ~domains ~baseline_cache ~obs
    () =
  let faults = faults @ Fault.schedule_of_seed ~seed ~intensity:fault_intensity in
  let config =
    if race_bugs then Kit_kernel.Config.v5_13_rw ()
    else Campaign.default_options.Campaign.config
  in
  { Campaign.default_options with
    Campaign.config; seed; corpus_size; strategy; faults; fuel; max_retries;
    domains = max 1 domains; schedules = max 1 schedules; baseline_cache; obs }

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Render the AGG-RS groups.")

let summary_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "summary" ] ~docv:"FILE"
        ~doc:
          "Write the deterministic campaign summary (no wall-clock content) \
           to $(docv) — byte-identical to what $(b,kit results) prints for \
           a served tenant with the same seed, corpus size and strategy.")

let write_summary c = function
  | None -> ()
  | Some path ->
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (Proto.summary c));
    Fmt.pr "summary: %s@." path

let print_pool_stats ~procs = function
  | None -> ()
  | Some (s : Pool.stats) ->
    Fmt.pr "pool: %d procs, %d spawns, %d deaths (%d heartbeat), %d respawns@."
      procs s.Pool.spawns s.Pool.deaths s.Pool.heartbeat_timeouts
      s.Pool.respawns;
    Fmt.pr "pool: %d resharded, %d stolen, %d poisoned, %d resumed@."
      s.Pool.resharded s.Pool.stolen s.Pool.poisoned s.Pool.resumed

(* Exit code of a finished campaign: quarantined crashers dominate. *)
let campaign_exit (c : Campaign.t) =
  if c.Campaign.quarantined <> [] then exit_quarantined
  else if c.Campaign.reports <> [] then exit_reports
  else exit_clean

let print_robustness (c : Campaign.t) =
  if c.Campaign.options.Campaign.faults <> [] then begin
    Fmt.pr "fault schedule: %s@."
      (Fault.schedule_to_string c.Campaign.options.Campaign.faults);
    Fmt.pr "faults fired: %a@." Fault.pp_counters c.Campaign.fault_counters;
    Fmt.pr "supervisor: %a@." Supervisor.pp_stats c.Campaign.sup_stats
  end;
  if c.Campaign.quarantined <> [] then begin
    Fmt.pr "%d quarantined crasher(s):@."
      (List.length c.Campaign.quarantined);
    List.iter
      (fun crash -> Fmt.pr "%a@." Supervisor.pp_crash crash)
      c.Campaign.quarantined
  end

(* Run the execute phase chunk by chunk when checkpointing is on, saving
   the checkpoint file after every chunk. *)
let run_campaign opts ~checkpoint_file ~checkpoint_every ~resume =
  let prepared = Campaign.prepare opts in
  match checkpoint_file with
  | None -> Campaign.execute_prepared prepared
  | Some path ->
    let start =
      if resume && Sys.file_exists path then
        match Campaign.load_checkpoint path with
        | Ok ck ->
          let done_, total = Campaign.checkpoint_progress ck in
          Fmt.pr "resuming from %s: %d/%d representatives done@." path done_
            total;
          Some ck
        | Error e ->
          Fmt.epr "kit: cannot resume: %s (starting over)@."
            (Kit_core.Checkpoint.error_to_string e);
          None
      else None
    in
    let rec go resume =
      match
        Campaign.execute_partial ?resume ~budget:(max 1 checkpoint_every)
          prepared
      with
      | `Done t ->
        if Sys.file_exists path then Sys.remove path;
        t
      | `Paused ck ->
        Campaign.save_checkpoint path ck;
        go (Some ck)
    in
    go start

let cmd_campaign =
  let run seed corpus_size strategy verbose faults fault_intensity fuel
      max_retries domains schedules race_bugs procs no_baseline_cache
      checkpoint_file checkpoint_every resume summary_file metrics_file
      trace_file =
    guarded (fun () ->
        let obs = obs_of_flags ~metrics_file ~trace_file in
        let opts =
          options ~schedules ~race_bugs ~seed ~corpus_size ~strategy ~faults
            ~fault_intensity ~fuel ~max_retries ~domains
            ~baseline_cache:(not no_baseline_cache) ~obs ()
        in
        let pool_stats = ref None in
        let c =
          if procs > 1 then
            (* Crash-isolated execute phase: the pool owns checkpointing
               (its shard file is not the in-process campaign format). *)
            let cfg =
              { Pool.default_config with
                Pool.procs;
                checkpoint_path = checkpoint_file;
                checkpoint_every = max 1 checkpoint_every }
            in
            Campaign.run_with_executor
              ~executor:
                (Pool.executor ?obs ~resume
                   ~on_stats:(fun s -> pool_stats := Some s)
                   cfg)
              opts
          else run_campaign opts ~checkpoint_file ~checkpoint_every ~resume
        in
        export_obs obs ~metrics_file ~trace_file
          ~meta:
            [ ("cmd", Jsonl.Str "campaign"); ("seed", Jsonl.Int seed);
              ("corpus_size", Jsonl.Int corpus_size);
              ("strategy", Jsonl.Str (Cluster.strategy_name strategy)) ];
        let found = Oracle.new_bugs_found c.Campaign.keyed in
        Fmt.pr "strategy %s: %d clusters, %d reports after filtering@."
          (Cluster.strategy_name c.Campaign.generation.Cluster.strategy)
          c.Campaign.generation.Cluster.clusters
          (List.length c.Campaign.reports);
        Fmt.pr "%s@." (Tables.table5 c);
        Fmt.pr "new bugs found (%d/9): %a@." (List.length found)
          (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
          found;
        if c.Campaign.options.Campaign.schedules > 1 then begin
          let s = c.Campaign.sched in
          let race = Oracle.race_bugs_found c.Campaign.concurrent in
          Fmt.pr
            "schedule search (%d seeds/case): %d candidates, %d classes, \
             %d executed, %d pruned, %d skipped@."
            c.Campaign.options.Campaign.schedules s.Campaign.sched_candidates
            s.Campaign.sched_classes s.Campaign.sched_executed
            s.Campaign.sched_pruned s.Campaign.sched_skipped;
          Fmt.pr "concurrent reports: %d@."
            (List.length c.Campaign.concurrent);
          Fmt.pr "race-window bugs found (%d/%d): %a@." (List.length race)
            (List.length Bugs.race_bugs)
            (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
            race;
          List.iter
            (fun (r : Kit_detect.Report.t) ->
              Fmt.pr "%a@." Kit_detect.Report.pp r)
            c.Campaign.concurrent
        end;
        Fmt.pr "%s@." (Tables.performance c);
        (* satellite: a resumed --procs run must say so — the pool line
           (including the resumed count) used to be dropped here *)
        print_pool_stats ~procs !pool_stats;
        print_robustness c;
        if verbose then Fmt.pr "@.%s@." (Kit_report.Render.groups c.Campaign.agg_rs);
        write_summary c summary_file;
        campaign_exit c)
  in
  Cmd.v (Cmd.info "campaign" ~doc:"Run a full testing campaign")
    Term.(
      const run $ seed_arg $ corpus_size_arg $ strategy_arg $ verbose_arg
      $ faults_arg $ fault_intensity_arg $ fuel_arg $ max_retries_arg
      $ domains_arg $ schedules_arg $ race_bugs_arg $ procs_arg
      $ no_baseline_cache_arg $ checkpoint_arg $ checkpoint_every_arg
      $ resume_arg $ summary_arg $ metrics_arg $ trace_arg)

let cmd_grow =
  let add_arg =
    Arg.(
      value & opt int 64
      & info [ "add" ]
          ~doc:"Programs to append to the corpus for the delta campaign.")
  in
  let run seed corpus_size strategy add verbose faults fault_intensity fuel
      max_retries domains schedules race_bugs no_baseline_cache metrics_file
      trace_file =
    guarded (fun () ->
        let obs = obs_of_flags ~metrics_file ~trace_file in
        let opts =
          options ~schedules ~race_bugs ~seed ~corpus_size ~strategy ~faults
            ~fault_intensity ~fuel ~max_retries ~domains
            ~baseline_cache:(not no_baseline_cache) ~obs ()
        in
        (* Streaming base campaign: execute-while-generate, so the first
           report lands before the corpus is fully profiled. *)
        let s = Campaign.stream opts in
        let base = Campaign.stream_result s in
        let base_stats = Campaign.stream_stats s in
        Fmt.pr
          "base corpus %d: %d clusters, %d reports, %d representative \
           executions%a@."
          corpus_size base.Campaign.generation.Cluster.clusters
          (List.length base.Campaign.reports)
          base_stats.Campaign.executed_cases
          Fmt.(
            option (fun ppf t -> pf ppf ", first report after %.3fs" t))
          base_stats.Campaign.first_report_s;
        (* Delta campaign: only new and representative-changed clusters
           re-execute. *)
        let c = Campaign.extend s ~add in
        let stats = Campaign.stream_stats s in
        let delta = stats.Campaign.executed_cases - base_stats.Campaign.executed_cases in
        let total = List.length c.Campaign.generation.Cluster.reps in
        export_obs obs ~metrics_file ~trace_file
          ~meta:
            [ ("cmd", Jsonl.Str "grow"); ("seed", Jsonl.Int seed);
              ("corpus_size", Jsonl.Int corpus_size);
              ("add", Jsonl.Int add);
              ("strategy", Jsonl.Str (Cluster.strategy_name strategy)) ];
        Fmt.pr
          "grown corpus %d: %d clusters, %d reports after filtering@."
          (corpus_size + add) c.Campaign.generation.Cluster.clusters
          (List.length c.Campaign.reports);
        Fmt.pr
          "delta: executed %d of %d cluster representatives (%d unchanged, \
           %d re-executed after representative changes)@."
          delta total (total - delta)
          (stats.Campaign.reexecuted - base_stats.Campaign.reexecuted);
        let found = Oracle.new_bugs_found c.Campaign.keyed in
        Fmt.pr "new bugs found (%d/9): %a@." (List.length found)
          (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
          found;
        if c.Campaign.options.Campaign.schedules > 1 then begin
          let race = Oracle.race_bugs_found c.Campaign.concurrent in
          Fmt.pr "concurrent reports: %d@."
            (List.length c.Campaign.concurrent);
          Fmt.pr "race-window bugs found (%d/%d): %a@." (List.length race)
            (List.length Bugs.race_bugs)
            (Fmt.list ~sep:(Fmt.any ", ") Bugs.pp)
            race
        end;
        print_robustness c;
        if verbose then
          Fmt.pr "@.%s@." (Kit_report.Render.groups c.Campaign.agg_rs);
        campaign_exit c)
  in
  Cmd.v
    (Cmd.info "grow"
       ~doc:
         "Run a streaming campaign, then grow the corpus and re-execute \
          only changed clusters")
    Term.(
      const run $ seed_arg $ corpus_size_arg $ strategy_arg $ add_arg
      $ verbose_arg $ faults_arg $ fault_intensity_arg $ fuel_arg
      $ max_retries_arg $ domains_arg $ schedules_arg $ race_bugs_arg
      $ no_baseline_cache_arg $ metrics_arg $ trace_arg)

(* kit coverage: the campaign as a measurement instrument. Runs the
   pipeline (diagnosis off — the ledger needs reports, not culprit
   pairs) and prints the per-variable coverage ledger and attrition
   funnel instead of the bug tables. The JSONL output is deterministic
   for a seed and carries no schedule parameters in its meta line, so
   exports from --domains 1, --domains 4 and --procs 2 runs are
   byte-identical — that equality is the CI gate for schedule-invariant
   accounting. *)
let cmd_coverage =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the ledger as JSONL (one $(i,covsum) summary line, one \
             line per variable, one $(i,funnel) attrition line) instead of \
             the text report. Deterministic and byte-identical across \
             $(b,--domains)/$(b,--procs) schedules.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the JSONL ledger to $(docv).")
  in
  let run seed corpus_size strategy domains procs checkpoint_file
      checkpoint_every resume json out =
    guarded (fun () ->
        let opts =
          { Campaign.default_options with
            Campaign.seed; corpus_size; strategy;
            domains = max 1 domains;
            diagnose = false }
        in
        let c =
          if procs > 1 then
            let cfg =
              { Pool.default_config with
                Pool.procs;
                checkpoint_path = checkpoint_file;
                checkpoint_every = max 1 checkpoint_every }
            in
            Campaign.run_with_executor
              ~executor:(Pool.executor ~resume cfg)
              opts
          else run_campaign opts ~checkpoint_file ~checkpoint_every ~resume
        in
        let a = c.Campaign.attrition in
        let funnel_line =
          Jsonl.to_string
            (Jsonl.Obj
               [ ("k", Jsonl.Str "funnel");
                 ("generated", Jsonl.Int a.Campaign.at_generated);
                 ("absorbed", Jsonl.Int a.Campaign.at_absorbed);
                 ("quar_panic", Jsonl.Int a.Campaign.at_quar_panic);
                 ("quar_hung", Jsonl.Int a.Campaign.at_quar_hung);
                 ("quar_lost", Jsonl.Int a.Campaign.at_quar_lost);
                 ("no_divergence", Jsonl.Int a.Campaign.at_no_divergence);
                 ("filtered_nondet", Jsonl.Int a.Campaign.at_filtered_nondet);
                 ("filtered_resource",
                  Jsonl.Int a.Campaign.at_filtered_resource);
                 ("reported", Jsonl.Int a.Campaign.at_reported);
                 ("balanced",
                  Jsonl.Bool (Campaign.attrition_balanced a)) ])
        in
        (* No domains/procs in the meta line: the export must byte-diff
           equal across execution schedules. *)
        let meta_line =
          Jsonl.to_string
            (Jsonl.Obj
               [ ("k", Jsonl.Str "meta"); ("cmd", Jsonl.Str "coverage");
                 ("seed", Jsonl.Int seed);
                 ("corpus_size", Jsonl.Int corpus_size);
                 ("strategy", Jsonl.Str (Cluster.strategy_name strategy)) ])
        in
        let jsonl =
          (meta_line :: Coverage.jsonl_lines c.Campaign.coverage)
          @ [ funnel_line ]
        in
        (match out with
        | None -> ()
        | Some path ->
          Export.write_file path jsonl;
          Fmt.pr "coverage: %s@." path);
        if json then List.iter print_endline jsonl
        else begin
          Fmt.pr "%s@." (Coverage.render c.Campaign.coverage);
          Fmt.pr "%s@."
            (Render.funnel
               { Export.p_meta = [];
                 p_snapshot = Obs.snapshot c.Campaign.obs;
                 p_events = [];
                 p_dropped = 0 })
        end;
        campaign_exit c)
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Run a campaign and report the per-variable coverage ledger — \
          which namespace-protected shared variables were touched, \
          written, read, observed with an overlapping write/read pair, or \
          attributed to a report — plus the funnel attrition accounting \
          that charges every generated case to one terminal stage.")
    Term.(
      const run $ seed_arg $ corpus_size_arg $ strategy_arg $ domains_arg
      $ procs_arg $ checkpoint_arg $ checkpoint_every_arg $ resume_arg
      $ json_arg $ out_arg)

let cmd_distrib =
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Worker environments.")
  in
  let kill_arg =
    let parse s =
      match String.split_on_char ':' s with
      | [ w; n ] -> (
        match (int_of_string_opt w, int_of_string_opt n) with
        | Some w, Some n when w >= 0 && n >= 0 ->
          Ok { Distrib.dead_worker = w; after = n }
        | _ -> Error (`Msg "expected WORKER:AFTER (non-negative integers)"))
      | _ -> Error (`Msg "expected WORKER:AFTER")
    in
    let print ppf f =
      Fmt.pf ppf "%d:%d" f.Distrib.dead_worker f.Distrib.after
    in
    Arg.(
      value
      & opt_all (conv (parse, print)) []
      & info [ "kill" ] ~docv:"WORKER:AFTER"
          ~doc:
            "Kill worker $(b,WORKER) after it completes $(b,AFTER) test \
             cases; its remaining queue is resharded over the survivors. \
             Repeatable.")
  in
  let run seed corpus_size strategy workers faults fault_intensity fuel
      max_retries domains no_baseline_cache kills metrics_file trace_file =
    guarded (fun () ->
        let obs = obs_of_flags ~metrics_file ~trace_file in
        (* The single-node reference campaign stays at domains=1; the
           --domains flag parallelises the worker pool itself. *)
        let opts =
          options ~seed ~corpus_size ~strategy ~faults ~fault_intensity ~fuel
            ~max_retries ~domains:1 ~baseline_cache:(not no_baseline_cache)
            ~obs ()
        in
        let single = Campaign.run opts in
        let d =
          Distrib.execute ~failures:kills ~domains:(max 1 domains) opts
            single.Campaign.corpus single.Campaign.generation ~workers
        in
        (* The metrics export is the merged per-worker registries (what
           the paper's server would aggregate from its clients); the
           trace export is the per-worker rings interleaved by
           deterministic time, each span stamped with worker/case. *)
        (match (obs, metrics_file) with
        | Some (obs : Obs.t), Some path ->
          let snap =
            Metrics.merge
              [ d.Distrib.metrics;
                Metrics.snapshot ~volatile:true Metrics.default ]
          in
          Export.write_file path
            (Export.lines ~wall:true
               ~meta:
                 [ ("cmd", Jsonl.Str "distrib"); ("seed", Jsonl.Int seed);
                   ("workers", Jsonl.Int workers) ]
               ~events:(Tracer.events obs.Obs.tracer)
               ~dropped:(Tracer.dropped obs.Obs.tracer) snap);
          Fmt.pr "telemetry: %s@." path
        | _ -> ());
        (match (obs, trace_file) with
        | Some _, Some path ->
          Export.write_file path
            (Export.lines ~wall:true
               ~meta:
                 [ ("cmd", Jsonl.Str "distrib"); ("seed", Jsonl.Int seed);
                   ("workers", Jsonl.Int workers) ]
               ~events:d.Distrib.trace []);
          Fmt.pr "trace: %s@." path
        | _ -> ());
        Fmt.pr "%a@." Distrib.pp d;
        List.iter
          (fun (w : Distrib.worker_result) ->
            Fmt.pr "worker %d%s: %d/%d test cases, %d executions, %d reports@."
              w.Distrib.worker
              (if w.Distrib.died then " (died)" else "")
              w.Distrib.completed w.Distrib.assigned w.Distrib.executions
              (List.length w.Distrib.reports))
          d.Distrib.workers;
        let identical =
          List.length single.Campaign.reports = List.length d.Distrib.reports
        in
        Fmt.pr "single-node check: %d reports (%s)@."
          (List.length single.Campaign.reports)
          (if identical then "identical" else "MISMATCH");
        if not identical then exit_internal
        else if d.Distrib.quarantined <> [] then exit_quarantined
        else if d.Distrib.reports <> [] then exit_reports
        else exit_clean)
  in
  Cmd.v
    (Cmd.info "distrib" ~doc:"Run a campaign sharded over worker environments")
    Term.(
      const run $ seed_arg $ corpus_size_arg $ strategy_arg $ workers_arg
      $ faults_arg $ fault_intensity_arg $ fuel_arg $ max_retries_arg
      $ domains_arg $ no_baseline_cache_arg $ kill_arg $ metrics_arg
      $ trace_arg)

(* kit pool: the crash-isolated process pool, exposed directly so its
   failure machinery (sabotage, heartbeats, respawns, reshard,
   checkpoint/resume) can be exercised and CI-gated. Exit 0 means the
   run COMPLETED — crash isolation held — regardless of how many
   interference reports were found; an abort (every worker dead with
   work left) exits 3 through [guarded]. *)
let cmd_pool =
  let pool_procs_arg =
    Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Worker processes.")
  in
  let heartbeat_arg =
    Arg.(
      value & opt float 30.0
      & info [ "heartbeat" ] ~docv:"SECONDS"
          ~doc:
            "Per-job wall-clock deadline; a worker silent past it is \
             killed and its shard resharded.")
  in
  let max_respawns_arg =
    Arg.(
      value & opt int 3
      & info [ "max-respawns" ] ~doc:"Respawn budget per worker slot.")
  in
  let slot_after_conv what =
    let parse s =
      match String.split_on_char ':' s with
      | [ w; n ] -> (
        match (int_of_string_opt w, int_of_string_opt n) with
        | Some w, Some n when w >= 0 && n >= 0 -> Ok (w, n)
        | _ -> Error (`Msg "expected SLOT:AFTER (non-negative integers)"))
      | _ -> Error (`Msg "expected SLOT:AFTER")
    in
    let print ppf (w, n) = Fmt.pf ppf "%d:%d" w n in
    Arg.conv ~docv:(what ^ " SLOT:AFTER") (parse, print)
  in
  let kill_arg =
    Arg.(
      value
      & opt_all (slot_after_conv "kill") []
      & info [ "kill" ] ~docv:"SLOT:AFTER"
          ~doc:
            "Sabotage: worker $(b,SLOT) SIGKILLs itself on its next job \
             once it has completed $(b,AFTER) cases. Repeatable; the CI \
             crash-isolation gate.")
  in
  let hang_arg =
    Arg.(
      value
      & opt_all (slot_after_conv "hang") []
      & info [ "hang" ] ~docv:"SLOT:AFTER"
          ~doc:
            "Sabotage: as $(b,--kill) but the worker hangs forever — \
             only the heartbeat can catch it. Repeatable.")
  in
  let poison_arg =
    Arg.(
      value & opt_all int []
      & info [ "poison" ] ~docv:"CASE"
          ~doc:
            "Sabotage: any worker receiving case $(docv) dies — the \
             twice-lethal quarantine path. Repeatable.")
  in
  let run seed corpus_size strategy procs heartbeat_s max_respawns kills hangs
      poisons checkpoint_file checkpoint_every resume metrics_file trace_file
      =
    guarded (fun () ->
        let obs = obs_of_flags ~metrics_file ~trace_file in
        let opts =
          options ~seed ~corpus_size ~strategy ~faults:[] ~fault_intensity:0
            ~fuel:Campaign.default_options.Campaign.fuel
            ~max_retries:Campaign.default_options.Campaign.max_retries
            ~domains:1 ~baseline_cache:true ~obs ()
        in
        let cfg =
          { Pool.default_config with
            Pool.procs = max 1 procs;
            heartbeat_s;
            max_respawns = max 0 max_respawns;
            checkpoint_path = checkpoint_file;
            checkpoint_every = max 1 checkpoint_every;
            sabotage =
              { Pool.kill_after = kills; hang_after = hangs; poison = poisons }
          }
        in
        let stats = ref None in
        let executor options corpus generation =
          let o = Pool.execute ?obs ~resume cfg options corpus generation in
          stats := Some o.Pool.stats;
          (o.Pool.results, o.Pool.executions)
        in
        let c = Campaign.run_with_executor ~executor opts in
        export_obs obs ~metrics_file ~trace_file
          ~meta:
            [ ("cmd", Jsonl.Str "pool"); ("seed", Jsonl.Int seed);
              ("corpus_size", Jsonl.Int corpus_size);
              ("procs", Jsonl.Int procs) ];
        Fmt.pr "strategy %s: %d clusters, %d reports after filtering@."
          (Cluster.strategy_name c.Campaign.generation.Cluster.strategy)
          c.Campaign.generation.Cluster.clusters
          (List.length c.Campaign.reports);
        print_pool_stats ~procs:(max 1 procs) !stats;
        if c.Campaign.quarantined <> [] then
          Fmt.pr "%d quarantined crasher(s)@."
            (List.length c.Campaign.quarantined);
        Fmt.pr "run completed: crash isolation held@.";
        exit_clean)
  in
  Cmd.v
    (Cmd.info "pool"
       ~doc:
         "Run the execute phase on crash-isolated worker processes. Exit 0 \
          means the run completed (even under --kill/--hang sabotage); an \
          abort exits 3.")
    Term.(
      const run $ seed_arg $ corpus_size_arg $ strategy_arg $ pool_procs_arg
      $ heartbeat_arg $ max_respawns_arg $ kill_arg $ hang_arg $ poison_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ metrics_arg
      $ trace_arg)

let cmd_tables =
  let run seed corpus_size =
    guarded (fun () ->
        let prepared =
          Campaign.prepare
            { Campaign.default_options with Campaign.seed; corpus_size }
        in
        let _, t4, (df_ia, _, _, _) = Tables.table4 prepared in
        let _, t2 = Tables.table2 df_ia in
        Fmt.pr "== Table 2: bugs found ==@.%s@." t2;
        let _, t3 = Tables.table3 () in
        Fmt.pr "== Table 3: known bugs ==@.%s@." t3;
        Fmt.pr "== Table 4: generation strategies ==@.%s@." t4;
        Fmt.pr "== Table 5: report filtering ==@.%s@.@." (Tables.table5 df_ia);
        let _, t6 = Tables.table6 df_ia in
        Fmt.pr "== Table 6: report aggregation ==@.%s@." t6;
        Fmt.pr "== Performance (sec. 6.5) ==@.%s@." (Tables.performance df_ia);
        exit_clean)
  in
  Cmd.v (Cmd.info "tables" ~doc:"Regenerate the paper's evaluation tables")
    Term.(const run $ seed_arg $ corpus_size_arg)

let cmd_known_bugs =
  let run () =
    guarded (fun () ->
        let outcomes, rendered = Tables.table3 () in
        Fmt.pr "%s@." rendered;
        Fmt.pr "detected %d/7 documented bugs (paper: 5/7)@."
          (Known_bugs.detected_count outcomes);
        exit_clean)
  in
  Cmd.v
    (Cmd.info "known-bugs" ~doc:"Reproduce the documented bugs of Table 3")
    Term.(const run $ const ())

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse a user-supplied program file, turning parse failures into a
   clean CLI error instead of an uncaught exception. *)
let parse_program_file path =
  try Ok (Syzlang.parse (read_file path))
  with Syzlang.Parse_error msg ->
    Fmt.epr "kit: cannot parse %s: %s@." path msg;
    Error exit_internal

let cmd_run =
  let sender_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "sender" ] ~doc:"Sender program file (syzlang-style).")
  in
  let receiver_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "receiver" ] ~doc:"Receiver program file (syzlang-style).")
  in
  let version_arg =
    Arg.(
      value & opt string "5.13"
      & info [ "kernel" ] ~doc:"Model kernel release to test.")
  in
  let bounds_arg =
    Arg.(value & flag
         & info [ "bounds" ]
             ~doc:"Use the bounds-based detector instead of trace masking.")
  in
  let run sender_file receiver_file version bounds faults fault_intensity fuel
      max_retries seed metrics_file trace_file =
    guarded (fun () ->
        match (parse_program_file sender_file, parse_program_file receiver_file)
        with
        | Error code, _ | _, Error code -> code
        | Ok sender, Ok receiver ->
          let config = Config.make version in
          let faults =
            faults @ Fault.schedule_of_seed ~seed ~intensity:fault_intensity
          in
          let cfg =
            { Supervisor.default_config with Supervisor.fuel; max_retries }
          in
          let obs = obs_of_flags ~metrics_file ~trace_file in
          let sup =
            Supervisor.create ~cfg ~fault:(Fault.of_schedule faults)
              ?obs config
          in
          let finish code =
            export_obs obs ~metrics_file ~trace_file
              ~meta:[ ("cmd", Jsonl.Str "run"); ("seed", Jsonl.Int seed) ];
            code
          in
          finish
          @@
          if bounds then begin
            let violations =
              Kit_exec.Runner.execute_bounds sup.Supervisor.runner ~sender
                ~receiver
            in
            if violations = [] then begin
              Fmt.pr "no bound violations@.";
              exit_clean
            end
            else begin
              List.iter
                (fun v ->
                  Fmt.pr "VIOLATION %a@." Kit_trace.Bounds.pp_violation v)
                violations;
              exit_reports
            end
          end
          else begin
            match Supervisor.execute sup ~sender ~receiver with
            | Kit_exec.Runner.Crashed info ->
              Fmt.pr "test case QUARANTINED: %a@." Fault.pp_panic_info info;
              exit_quarantined
            | Kit_exec.Runner.Hung ->
              Fmt.pr "test case QUARANTINED: hung every attempt@.";
              exit_quarantined
            | Kit_exec.Runner.Completed outcome ->
              if outcome.Kit_exec.Runner.masked_diffs = [] then begin
                Fmt.pr "no functional interference detected@.";
                exit_clean
              end
              else begin
                Fmt.pr "functional interference on receiver calls [%a]:@."
                  (Fmt.list ~sep:(Fmt.any ",") Fmt.int)
                  outcome.Kit_exec.Runner.interfered;
                List.iter
                  (fun d -> Fmt.pr "  %a@." Kit_trace.Compare.pp_diff d)
                  outcome.Kit_exec.Runner.masked_diffs;
                exit_reports
              end
          end)
  in
  Cmd.v (Cmd.info "run" ~doc:"Execute one sender/receiver test case")
    Term.(
      const run $ sender_arg $ receiver_arg $ version_arg $ bounds_arg
      $ faults_arg $ fault_intensity_arg $ fuel_arg $ max_retries_arg
      $ seed_arg $ metrics_arg $ trace_arg)

let cmd_profile =
  let program_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "program" ] ~doc:"Test program file (syzlang-style).")
  in
  let run program_file =
    guarded (fun () ->
        match parse_program_file program_file with
        | Error code -> code
        | Ok prog ->
          let profiler = Kit_profile.Collect.create (Config.v5_13 ()) in
          let profile =
            Kit_profile.Collect.profile profiler
              ~role:Kit_profile.Collect.Receiver prog
          in
          Fmt.pr "%d attributed kernel memory accesses:@."
            (List.length profile.Kit_profile.Collect.accesses);
          List.iter
            (fun (a : Kit_profile.Stackrec.access) ->
              Fmt.pr "  sys#%d %s addr=0x%x ip=0x%x stack=[%s]@."
                a.Kit_profile.Stackrec.sys_index
                (Kit_kernel.Kevent.rw_to_string a.Kit_profile.Stackrec.rw)
                a.Kit_profile.Stackrec.addr a.Kit_profile.Stackrec.ip
                (String.concat " < "
                   (List.map Kit_kernel.Kfun.name a.Kit_profile.Stackrec.stack)))
            profile.Kit_profile.Collect.accesses;
          exit_clean)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile one test program's kernel memory footprint")
    Term.(const run $ program_arg)

let cmd_corpus =
  let size_arg =
    Arg.(value & opt int 16 & info [ "size" ] ~doc:"Corpus size.")
  in
  let run seed size =
    guarded (fun () ->
        let corpus = Corpus.generate ~seed ~size in
        List.iteri
          (fun i prog -> Fmt.pr "# program %d@.%s@." i (Program.to_string prog))
          corpus;
        exit_clean)
  in
  Cmd.v (Cmd.info "corpus" ~doc:"Print a generated program corpus")
    Term.(const run $ seed_arg $ size_arg)

let cmd_stats =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Telemetry JSONL file written by $(b,--metrics) or \
                $(b,--trace).")
  in
  let tree_arg =
    Arg.(
      value & flag
      & info [ "tree" ]
          ~doc:"Also print the reconstructed span tree (see $(b,kit trace) \
                for the full analysis).")
  in
  let funnel_arg =
    Arg.(
      value & flag
      & info [ "funnel" ]
          ~doc:
            "Render the attrition funnel from the export's \
             $(i,campaign.attr_*) counters: every generated data-flow case \
             charged to exactly one terminal stage, with a balance line, \
             plus the schedule-search and coverage summaries when \
             present.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Re-emit the export as canonical JSONL: metrics sorted by \
             name, wall-clock timestamps stripped — byte-stable, so two \
             canonicalised exports of the same campaign diff clean.")
  in
  let run file tree funnel json =
    guarded (fun () ->
        match Export.read_file file with
        | Error e ->
          Fmt.epr "kit: %s@." e;
          exit_internal
        | Ok parsed ->
          if json then begin
            let snapshot =
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                parsed.Export.p_snapshot
            in
            List.iter print_endline
              (Export.lines ~wall:false ~meta:parsed.Export.p_meta
                 ~events:parsed.Export.p_events
                 ~dropped:parsed.Export.p_dropped snapshot);
            exit_clean
          end
          else begin
            Fmt.pr "%s@." (Render.stats parsed);
            if funnel then Fmt.pr "%s@." (Render.funnel parsed);
            if tree then
              Fmt.pr "%s@."
                (Spantree.render
                   (Spantree.build ~dropped:parsed.Export.p_dropped
                      parsed.Export.p_events));
            exit_clean
          end)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Summarise a telemetry JSONL file")
    Term.(const run $ file_arg $ tree_arg $ funnel_arg $ json_arg)

(* kit trace: the trace-analysis toolchain over a --trace/--metrics
   export. Streams the file (Export.fold_file) so a long campaign's
   export never has to fit in one list, rebuilds the span tree, and
   prints tree + profile + critical path, or writes Chrome trace-event
   JSON / folded flamegraph stacks. *)
let cmd_trace =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Trace JSONL file written by $(b,--trace) (or \
                $(b,--metrics)).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~doc:"Rows of the profile table to print.")
  in
  let depth_arg =
    Arg.(
      value & opt int 6
      & info [ "depth" ] ~doc:"Maximum span-tree depth to print.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Write Chrome trace-event JSON to $(docv); load it in Perfetto \
             (ui.perfetto.dev) or chrome://tracing.")
  in
  let folded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Write folded flamegraph stacks to $(docv) (flamegraph.pl or \
             speedscope input).")
  in
  let lane_arg =
    Arg.(
      value & opt_all string []
      & info [ "lane" ] ~docv:"ATTR"
          ~doc:
            "Split lanes by span attribute $(docv) (repeatable; default: \
             domain, worker).")
  in
  let run file top depth chrome folded lanes =
    guarded (fun () ->
        (* One streaming pass: keep only events and the drop count. *)
        let folded_lines =
          Export.fold_file file ~init:(0, [])
            ~f:(fun ((dropped, evs) as acc) line ->
              match line with
              | Export.Event e -> (dropped, e :: evs)
              | Export.Dropped n -> (n, evs)
              | Export.Meta _ | Export.Metric _ -> acc)
        in
        match folded_lines with
        | Error e ->
          Fmt.epr "kit: %s@." e;
          exit_internal
        | Ok (dropped, rev_events) ->
          let lane_attrs =
            if lanes = [] then Spantree.default_lane_attrs else lanes
          in
          let tree =
            Spantree.build ~lane_attrs ~dropped (List.rev rev_events)
          in
          let profile = Profile.of_tree tree in
          Fmt.pr "%s@." (Spantree.render ~max_depth:depth tree);
          Fmt.pr "%s@." (Profile.render_table ~k:top profile);
          Fmt.pr "%s@." (Profile.render_critical_path tree);
          (match chrome with
          | None -> ()
          | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Jsonl.to_string (Spantree.to_chrome tree));
                output_char oc '\n');
            Fmt.pr "chrome trace: %s@." path);
          (match folded with
          | None -> ()
          | Some path ->
            Export.write_file path (Profile.folded tree);
            Fmt.pr "folded stacks: %s@." path);
          exit_clean)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Analyse a trace export: span tree, profile table, critical path, \
          Chrome/flamegraph output")
    Term.(
      const run $ file_arg $ top_arg $ depth_arg $ chrome_arg $ folded_arg
      $ lane_arg)

(* -- the serve family: daemon + one-shot clients ------------------------- *)

let socket_arg =
  Arg.(
    value & opt string "kit-serve.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on.")

(* One-shot client call; transport failures and rejections exit 3. *)
let client socket req ~on_reply =
  match Proto.request socket req with
  | Error e ->
    Fmt.epr "kit: %s@." e;
    exit_internal
  | Ok (Proto.Rejected why) ->
    Fmt.epr "kit: rejected: %s@." why;
    exit_internal
  | Ok reply -> on_reply reply

let unexpected_reply (_ : Proto.reply) =
  Fmt.epr "kit: unexpected reply from the daemon@.";
  exit_internal

let rec wait_results socket name =
  match Proto.request socket (Proto.Results name) with
  | Ok (Proto.Summary s) ->
    Fmt.pr "%s@?" s;
    exit_clean
  | Ok (Proto.Not_ready _) ->
    Unix.sleepf 0.25;
    wait_results socket name
  | Ok (Proto.Rejected why) ->
    Fmt.epr "kit: rejected: %s@." why;
    exit_internal
  | Ok _ -> unexpected_reply Proto.Bye
  | Error e ->
    Fmt.epr "kit: %s@." e;
    exit_internal

let cmd_serve =
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Checkpoint tenant state under $(docv) (created if missing); a \
             daemon restarted with $(b,--resume) restores every tenant from \
             it without re-executing checkpointed work.")
  in
  let serve_procs_arg =
    Arg.(value & opt int 4 & info [ "procs" ] ~doc:"Shared worker processes.")
  in
  let serve_heartbeat_arg =
    Arg.(
      value & opt float 30.0
      & info [ "heartbeat" ] ~docv:"SECONDS"
          ~doc:"Per-job wall-clock deadline for pool workers.")
  in
  let serve_max_respawns_arg =
    Arg.(
      value & opt int 3
      & info [ "max-respawns" ] ~doc:"Respawn budget per worker slot.")
  in
  let max_active_arg =
    Arg.(
      value & opt int 4
      & info [ "max-active" ] ~doc:"Tenants executing concurrently.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 16
      & info [ "max-pending" ]
          ~doc:"Admission bound: submissions waiting for activation.")
  in
  let run socket state_dir procs heartbeat_s max_respawns max_active
      max_pending checkpoint_every resume metrics_file trace_file =
    guarded (fun () ->
        let obs = obs_of_flags ~metrics_file ~trace_file in
        let cfg =
          { Sched.sc_pool =
              { Pool.default_config with
                Pool.procs = max 1 procs;
                heartbeat_s;
                max_respawns = max 0 max_respawns };
            sc_max_active = max 1 max_active;
            sc_max_pending = max 0 max_pending;
            sc_state_dir = state_dir;
            sc_checkpoint_every = max 1 checkpoint_every }
        in
        let s = Sched.create ?obs cfg in
        Fun.protect
          ~finally:(fun () -> Sched.shutdown s)
          (fun () ->
            if resume then
              List.iter
                (fun (name, state) ->
                  Fmt.pr "kit-serve: resumed tenant %s (%s)@." name state)
                (Sched.resume s);
            Sched.serve ~log:(fun m -> Fmt.pr "kit-serve: %s@." m) s ~socket);
        export_obs obs ~metrics_file ~trace_file
          ~meta:[ ("cmd", Jsonl.Str "serve"); ("procs", Jsonl.Int procs) ];
        exit_clean)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant campaign daemon: concurrent submissions \
          share one crash-isolated worker pool under weighted \
          deficit-round-robin fair scheduling. SIGTERM (or a Shutdown \
          request) checkpoints every tenant and exits 0; a daemon whose \
          every worker died exits 3 after checkpointing, and \
          $(b,--resume) picks up where it left off.")
    Term.(
      const run $ socket_arg $ state_dir_arg $ serve_procs_arg
      $ serve_heartbeat_arg $ serve_max_respawns_arg $ max_active_arg
      $ max_pending_arg $ checkpoint_every_arg $ resume_arg $ metrics_arg
      $ trace_arg)

let name_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"NAME" ~doc:"Tenant name.")

let wait_arg =
  Arg.(
    value & flag
    & info [ "wait" ]
        ~doc:"Poll until the tenant finishes, then print its summary.")

let cmd_submit =
  let submit_name_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:"Tenant name (1-64 chars from [A-Za-z0-9_-]; unique).")
  in
  let weight_arg =
    Arg.(
      value & opt int 1
      & info [ "weight" ]
          ~doc:
            "Fair-share weight: under contention the tenant's executed-case \
             share converges to weight / sum-of-weights.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 0
      & info [ "max-inflight" ]
          ~doc:"Cap on the tenant's concurrently executing cases (0 = none).")
  in
  let no_diagnose_arg =
    Arg.(
      value & flag
      & info [ "no-diagnose" ] ~doc:"Skip diagnosis and aggregation.")
  in
  let run socket name seed corpus_size strategy weight max_inflight
      no_diagnose schedules wait =
    guarded (fun () ->
        let spec =
          { Proto.sp_name = name;
            sp_seed = seed;
            sp_corpus_size = corpus_size;
            sp_strategy = strategy;
            sp_weight = max 1 weight;
            sp_max_inflight = max 0 max_inflight;
            sp_diagnose = not no_diagnose;
            sp_schedules = max 1 schedules }
        in
        client socket (Proto.Submit spec) ~on_reply:(function
          | Proto.Accepted { a_name; a_id } ->
            Fmt.pr "accepted %s as tenant %d@." a_name a_id;
            if wait then wait_results socket name else exit_clean
          | reply -> unexpected_reply reply))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a campaign to a running $(b,kit serve) daemon. The \
          tenant's eventual $(b,kit results) summary is byte-identical to \
          a standalone $(b,kit campaign --summary) with the same seed, \
          corpus size and strategy.")
    Term.(
      const run $ socket_arg $ submit_name_arg $ seed_arg $ corpus_size_arg
      $ strategy_arg $ weight_arg $ max_inflight_arg $ no_diagnose_arg
      $ schedules_arg $ wait_arg)

let cmd_status =
  let run socket =
    guarded (fun () ->
        client socket Proto.Status ~on_reply:(function
          | Proto.Status_is { st_pool = p; st_tenants } ->
            Fmt.pr "pool: %d procs, %d live, %d spawns, %d deaths, %d \
                    respawns@."
              p.Proto.ps_procs p.Proto.ps_live p.Proto.ps_spawns
              p.Proto.ps_deaths p.Proto.ps_respawns;
            List.iter
              (fun (ts : Proto.tenant_status) ->
                Fmt.pr
                  "tenant %s (id %d, weight %d): %s, %d/%d done, %d execs, \
                   %d resumed, %d dispatched (%d contended, %d stolen)%s@."
                  ts.Proto.ts_name ts.Proto.ts_id ts.Proto.ts_weight
                  ts.Proto.ts_state ts.Proto.ts_done ts.Proto.ts_total
                  ts.Proto.ts_executions ts.Proto.ts_resumed
                  ts.Proto.ts_dispatched ts.Proto.ts_contended
                  ts.Proto.ts_steals
                  ((if ts.Proto.ts_reports >= 0 then
                      Printf.sprintf ", %d reports" ts.Proto.ts_reports
                    else "")
                  ^
                  if ts.Proto.ts_cov_vars >= 0 then
                    Printf.sprintf
                      ", coverage %d/%d paired (%d gaps, %d attributed)"
                      ts.Proto.ts_cov_paired ts.Proto.ts_cov_vars
                      ts.Proto.ts_cov_gaps ts.Proto.ts_cov_attributed
                  else ""))
              st_tenants;
            exit_clean
          | reply -> unexpected_reply reply))
  in
  Cmd.v
    (Cmd.info "status" ~doc:"Show the daemon's pool and tenant state.")
    Term.(const run $ socket_arg)

let cmd_results =
  let run socket name wait =
    guarded (fun () ->
        if wait then wait_results socket name
        else
          client socket (Proto.Results name) ~on_reply:(function
            | Proto.Summary s ->
              Fmt.pr "%s@?" s;
              exit_clean
            | Proto.Not_ready state ->
              Fmt.epr "kit: %s is not finished (%s)@." name state;
              exit_reports
            | reply -> unexpected_reply reply))
  in
  Cmd.v
    (Cmd.info "results"
       ~doc:
         "Print a finished tenant's deterministic campaign summary \
          (byte-identical to $(b,kit campaign --summary) on the same \
          inputs).")
    Term.(const run $ socket_arg $ name_arg $ wait_arg)

let cmd_cancel =
  let run socket name =
    guarded (fun () ->
        client socket (Proto.Cancel name) ~on_reply:(function
          | Proto.Acked ->
            Fmt.pr "cancelled %s@." name;
            exit_clean
          | reply -> unexpected_reply reply))
  in
  Cmd.v
    (Cmd.info "cancel" ~doc:"Cancel a pending or active tenant.")
    Term.(const run $ socket_arg $ name_arg)

let cmd_extend =
  let add_arg =
    Arg.(
      value & opt int 64
      & info [ "add" ] ~doc:"Programs to append to the tenant's corpus.")
  in
  let run socket name add wait =
    guarded (fun () ->
        client socket (Proto.Extend { x_name = name; x_add = max 1 add })
          ~on_reply:(function
          | Proto.Accepted { a_name; a_id } ->
            Fmt.pr "extending %s (tenant %d) by %d@." a_name a_id (max 1 add);
            if wait then wait_results socket name else exit_clean
          | reply -> unexpected_reply reply))
  in
  Cmd.v
    (Cmd.info "extend"
       ~doc:
         "Grow a finished tenant's corpus and re-run it as a delta \
          campaign: cached per-cluster results are replayed, so unchanged \
          clusters are not re-executed.")
    Term.(const run $ socket_arg $ name_arg $ add_arg $ wait_arg)

let main =
  Cmd.group
    (Cmd.info "kit" ~version:"1.0.0"
       ~doc:"Functional interference testing for OS-level virtualization")
    [ cmd_campaign; cmd_grow; cmd_coverage; cmd_distrib; cmd_pool; cmd_serve;
      cmd_submit; cmd_status; cmd_results; cmd_cancel; cmd_extend; cmd_tables;
      cmd_known_bugs; cmd_run; cmd_profile; cmd_corpus; cmd_stats; cmd_trace ]

(* Pool workers re-execute this binary; the trampoline must run before
   cmdliner sees argv. No-op in the parent. *)
let () = Pool.worker_entry ()
let () = exit (Cmd.eval' main)
